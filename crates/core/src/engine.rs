//! The batched estimation engine — the throughput layer over
//! [`Estimator`].
//!
//! A single [`Estimator`] already memoizes relation masks and recycles
//! join allocations; the engine adds workload-level machinery on top:
//! a shared mask cache, a shared containment-adjacency index, and a
//! workload-level [`JoinCache`] that every worker warms for the others,
//! plus [`estimate_batch`](EstimationEngine::estimate_batch), which fans a
//! query slice across scoped worker threads. Each worker owns one
//! estimator (scratch arenas never cross threads) while all of them read
//! the same summary and memo tables. Results come back in input order and
//! are bit-identical to a serial `estimate` loop — estimates are pure
//! functions of `(summary, query)`; the caches only change how fast they
//! are produced.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use xpe_pathid::{JoinIndexCache, RelationMaskCache};
use xpe_synopsis::Summary;
use xpe_xpath::{Query, QueryParseError};

use crate::estcache::EstimateCache;
use crate::estimator::Estimator;
use crate::invariant::finalize_estimate;
use crate::join::JoinKernel;
use crate::joincache::JoinCache;
use crate::serve::{Budget, DegradedReason, EstimateOutcome, EstimateStatus, QueryLimits};

/// Default number of join results the engine's workload cache retains.
/// Sized to hold the full distinct-skeleton working set of the paper's
/// template workloads with headroom — XMark's workload plus its derived
/// spine queries reaches ~1.2k skeletons, and an LRU running just below
/// its working set thrashes, re-running a full join fixpoint for every
/// evicted reuse — while still bounding memory on adversarial ones.
pub const DEFAULT_JOIN_CACHE_CAPACITY: usize = 4096;

/// Default number of finished estimates the engine's full-query cache
/// retains. Estimates are keyed by the complete canonical query, not the
/// skeleton, so the distinct-key population is larger than the join
/// cache's; each entry is only a string key and an `f64`, so holding the
/// whole working set of a skewed production workload is cheap.
pub const DEFAULT_ESTIMATE_CACHE_CAPACITY: usize = 16384;

/// Kernel counters of one engine's lifetime, for benchmark reports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelStats {
    /// Join-cache lookups that found a memoized result.
    pub join_cache_hits: u64,
    /// Join-cache lookups that ran the join kernel.
    pub join_cache_misses: u64,
    /// `hits / (hits + misses)`, or 0 before any lookup.
    pub join_cache_hit_rate: f64,
    /// Full-query estimate-cache lookups served from a published value —
    /// the skew-aware fast path that skips the join machinery entirely.
    pub estimate_cache_hits: u64,
    /// Full-query estimate-cache lookups that ran the estimate.
    pub estimate_cache_misses: u64,
    /// `hits / (hits + misses)` of the estimate cache, or 0 before any
    /// lookup.
    pub estimate_cache_hit_rate: f64,
    /// Finished `Ok` estimates published to the estimate cache (degraded,
    /// rejected, and budget-truncated answers are never published).
    pub estimate_cache_inserts: u64,
    /// Estimate-cache entries dropped by segment rotation — its only
    /// eviction path.
    pub estimate_cache_invalidations: u64,
    /// Containment adjacencies built (distinct `(tag, tag, axis)` triples).
    pub adjacency_builds: u64,
    /// Total wall-clock milliseconds spent building adjacencies.
    pub adjacency_build_ms: f64,
    /// Total `(pid_u, pid_v)` pairs materialized across all adjacencies.
    pub adjacency_pairs: u64,
    /// Fallible estimates that completed normally.
    pub outcomes_ok: u64,
    /// Fallible estimates served degraded (budget exhaustion or an
    /// isolated worker panic).
    pub outcomes_degraded: u64,
    /// Fallible estimates refused by admission control.
    pub outcomes_rejected: u64,
    /// Worker panics caught and isolated by `try_estimate_batch` (a
    /// subset of `outcomes_degraded`).
    pub worker_panics: u64,
    /// Lock (mutex) acquisitions across the engine's shared caches:
    /// relation masks, the adjacency index, and the join cache's shards.
    /// The warm-path contract is that this counter does **not** move
    /// between two [`kernel_stats`](EstimationEngine::kernel_stats) calls
    /// with only warm estimates in between — snapshot probes, private
    /// memos, and worker-local join caches serve everything lock-free.
    pub lock_acquisitions: u64,
}

/// Lifetime outcome tallies of an engine's fallible entry points.
#[derive(Debug, Default)]
struct OutcomeCounters {
    ok: AtomicU64,
    degraded: AtomicU64,
    rejected: AtomicU64,
    panics: AtomicU64,
}

impl OutcomeCounters {
    fn tally(&self, outcome: &EstimateOutcome) {
        match &outcome.status {
            EstimateStatus::Ok => self.ok.fetch_add(1, Ordering::Relaxed),
            EstimateStatus::Degraded { reason } => {
                if matches!(reason, DegradedReason::Panicked { .. }) {
                    self.panics.fetch_add(1, Ordering::Relaxed);
                }
                self.degraded.fetch_add(1, Ordering::Relaxed)
            }
            EstimateStatus::Rejected { .. } => self.rejected.fetch_add(1, Ordering::Relaxed),
        };
    }
}

/// Batch-capable estimation engine over a prebuilt [`Summary`].
pub struct EstimationEngine<'s> {
    summary: &'s Summary,
    masks: Arc<RelationMaskCache>,
    adjacency: Arc<JoinIndexCache>,
    join_cache: Option<Arc<JoinCache>>,
    est_cache: Option<Arc<EstimateCache>>,
    threads: usize,
    kernel: JoinKernel,
    local: Estimator<'s>,
    limits: QueryLimits,
    budget: Budget,
    outcomes: OutcomeCounters,
}

impl<'s> EstimationEngine<'s> {
    /// Creates an engine with one worker per available core and the
    /// default join-cache capacity.
    pub fn new(summary: &'s Summary) -> Self {
        Self::with_parts(
            summary,
            0,
            DEFAULT_JOIN_CACHE_CAPACITY,
            DEFAULT_ESTIMATE_CACHE_CAPACITY,
        )
    }

    fn with_parts(
        summary: &'s Summary,
        threads: usize,
        join_cache_capacity: usize,
        estimate_cache_capacity: usize,
    ) -> Self {
        let masks = Arc::new(RelationMaskCache::new());
        let adjacency = Arc::new(JoinIndexCache::new());
        let join_cache = (join_cache_capacity > 0)
            .then(|| Arc::new(JoinCache::with_capacity(join_cache_capacity)));
        let est_cache = (estimate_cache_capacity > 0)
            .then(|| Arc::new(EstimateCache::with_capacity(estimate_cache_capacity)));
        EstimationEngine {
            summary,
            masks: Arc::clone(&masks),
            adjacency: Arc::clone(&adjacency),
            join_cache: join_cache.clone(),
            est_cache: est_cache.clone(),
            threads,
            kernel: JoinKernel::default(),
            local: Estimator::with_caches(summary, masks, adjacency, join_cache)
                .with_estimate_cache(est_cache),
            limits: QueryLimits::unlimited(),
            budget: Budget::unlimited(),
            outcomes: OutcomeCounters::default(),
        }
    }

    /// Sets the batch worker count: `0` uses one worker per available
    /// core, `1` runs batches serially, any other value is taken
    /// literally.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets how many join results the workload-level join cache retains;
    /// `0` disables join caching entirely.
    pub fn with_join_cache_capacity(self, capacity: usize) -> Self {
        let est = self.est_cache.as_ref().map_or(0, |c| c.capacity());
        self.rebuild_with_caches(capacity, est)
    }

    /// Sets how many finished estimates the full-query estimate cache
    /// retains; `0` disables the skew-aware fast path entirely (every
    /// arrival runs the join machinery, as before this cache existed).
    pub fn with_estimate_cache_capacity(self, capacity: usize) -> Self {
        let join = self.join_cache.as_ref().map_or(0, |c| c.capacity());
        self.rebuild_with_caches(join, capacity)
    }

    fn rebuild_with_caches(self, join_capacity: usize, estimate_capacity: usize) -> Self {
        let mut rebuilt =
            Self::with_parts(self.summary, self.threads, join_capacity, estimate_capacity);
        rebuilt.limits = self.limits;
        rebuilt.budget = self.budget;
        // The outcome tallies are lifetime counters of *this* engine, not
        // of one cache configuration — carry them into the rebuild or
        // `kernel_stats()` silently under-reports after a capacity change.
        rebuilt.outcomes = self.outcomes;
        rebuilt = rebuilt.with_kernel(self.kernel);
        rebuilt
    }

    /// Selects the join kernel every estimator of this engine runs — the
    /// resident one and each batch worker (default:
    /// [`JoinKernel::Bitmap`]). Estimates are bit-identical across
    /// kernels; only throughput changes.
    pub fn with_kernel(mut self, kernel: JoinKernel) -> Self {
        self.kernel = kernel;
        self.local = self.local.with_kernel(kernel);
        self
    }

    /// The configured join kernel.
    pub fn kernel(&self) -> JoinKernel {
        self.kernel
    }

    /// Sets the admission policy the fallible entry points check; the
    /// default admits everything.
    pub fn with_limits(mut self, limits: QueryLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the per-query resource budget the fallible entry points run
    /// under; the default never exhausts.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The configured admission policy.
    pub fn limits(&self) -> &QueryLimits {
        &self.limits
    }

    /// The configured per-query budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The configured worker count (`0` = auto).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The summary the engine estimates against.
    pub fn summary(&self) -> &'s Summary {
        self.summary
    }

    /// The shared relation-mask memo table (grows as queries run).
    pub fn mask_cache(&self) -> &Arc<RelationMaskCache> {
        &self.masks
    }

    /// The shared containment-adjacency index (grows as queries run).
    pub fn adjacency_cache(&self) -> &Arc<JoinIndexCache> {
        &self.adjacency
    }

    /// The workload-level join cache, if enabled.
    pub fn join_cache(&self) -> Option<&Arc<JoinCache>> {
        self.join_cache.as_ref()
    }

    /// The full-query estimate cache, if enabled.
    pub fn estimate_cache(&self) -> Option<&Arc<EstimateCache>> {
        self.est_cache.as_ref()
    }

    /// Kernel counters accumulated over this engine's lifetime.
    ///
    /// Flushes the resident estimator's private join-cache tallies first
    /// so single-query traffic through [`estimate`](Self::estimate) is
    /// visible; batch workers flush at chunk boundaries and when they
    /// retire. Reads only atomics and never takes a shared lock itself,
    /// so `lock_acquisitions` deltas measure the estimates in between.
    pub fn kernel_stats(&self) -> KernelStats {
        self.local.flush_caches();
        let (hits, misses, rate, join_locks) = match &self.join_cache {
            Some(c) => (c.hits(), c.misses(), c.hit_rate(), c.lock_count()),
            None => (0, 0, 0.0, 0),
        };
        let (est_hits, est_misses, est_rate, est_inserts, est_invalidations, est_locks) =
            match &self.est_cache {
                Some(c) => (
                    c.hits(),
                    c.misses(),
                    c.hit_rate(),
                    c.inserts(),
                    c.invalidations(),
                    c.lock_count(),
                ),
                None => (0, 0, 0.0, 0, 0, 0),
            };
        KernelStats {
            join_cache_hits: hits,
            join_cache_misses: misses,
            join_cache_hit_rate: rate,
            estimate_cache_hits: est_hits,
            estimate_cache_misses: est_misses,
            estimate_cache_hit_rate: est_rate,
            estimate_cache_inserts: est_inserts,
            estimate_cache_invalidations: est_invalidations,
            adjacency_builds: self.adjacency.builds(),
            adjacency_build_ms: self.adjacency.build_ms(),
            adjacency_pairs: self.adjacency.pair_total(),
            outcomes_ok: self.outcomes.ok.load(Ordering::Relaxed),
            outcomes_degraded: self.outcomes.degraded.load(Ordering::Relaxed),
            outcomes_rejected: self.outcomes.rejected.load(Ordering::Relaxed),
            worker_panics: self.outcomes.panics.load(Ordering::Relaxed),
            lock_acquisitions: self.masks.lock_count()
                + self.adjacency.lock_count()
                + join_locks
                + est_locks,
        }
    }

    /// A fresh estimator sharing this engine's caches — for callers that
    /// want to drive queries themselves (e.g. one per thread).
    pub fn estimator(&self) -> Estimator<'s> {
        Estimator::with_caches(
            self.summary,
            Arc::clone(&self.masks),
            Arc::clone(&self.adjacency),
            self.join_cache.clone(),
        )
        .with_estimate_cache(self.est_cache.clone())
        .with_kernel(self.kernel)
    }

    /// Estimates one query on the engine's resident estimator.
    pub fn estimate(&self, query: &Query) -> f64 {
        self.local.estimate(query)
    }

    /// Parses and estimates one query string.
    pub fn estimate_str(&self, query: &str) -> Result<f64, QueryParseError> {
        self.local.estimate_str(query)
    }

    /// Estimates every query, fanning across the configured worker count;
    /// `out[i]` is the estimate of `queries[i]`. Bit-identical to calling
    /// [`estimate`](Self::estimate) per query in order.
    ///
    /// Each worker owns a private join-cache front and merges it into the
    /// shared cache after every claimed chunk, so between merge points a
    /// worker's warm path touches no shared cache line at all — the
    /// per-query shard locking of a naively shared cache is the main
    /// scaling bottleneck this avoids. Merging later never changes a
    /// result (joins are pure), only when other workers can reuse it.
    pub fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        let summary = self.summary;
        let masks = &self.masks;
        let adjacency = &self.adjacency;
        let join_cache = &self.join_cache;
        let est_cache = &self.est_cache;
        let kernel = self.kernel;
        xpe_par::par_map_init_flushed(
            self.threads,
            queries.len(),
            0,
            || {
                Estimator::with_caches(
                    summary,
                    Arc::clone(masks),
                    Arc::clone(adjacency),
                    join_cache.clone(),
                )
                .with_estimate_cache(est_cache.clone())
                .with_kernel(kernel)
            },
            |est, i| est.estimate(&queries[i]),
            |est| est.flush_caches(),
        )
    }

    /// Fallible estimation of one query under the engine's admission
    /// policy and budget, tallied into [`kernel_stats`](Self::kernel_stats).
    pub fn try_estimate(&self, query: &Query) -> EstimateOutcome {
        let out = self.local.try_estimate(query, &self.limits, &self.budget);
        self.outcomes.tally(&out);
        out
    }

    /// Fallible batch estimation: every query runs under the engine's
    /// admission policy and budget with **panic isolation** — a panicking
    /// query yields a `Degraded(Panicked)` outcome in its slot while
    /// every other query still completes. No panic escapes this method.
    pub fn try_estimate_batch(&self, queries: &[Query]) -> Vec<EstimateOutcome> {
        let limits = &self.limits;
        let budget = &self.budget;
        self.try_estimate_batch_with(queries, move |est, q| est.try_estimate(q, limits, budget))
    }

    /// The isolation seam under [`try_estimate_batch`](Self::try_estimate_batch):
    /// fans `queries` across the configured workers, running `f` per query
    /// on a per-worker [`Estimator`] inside a panic boundary. A caught
    /// panic becomes a `Degraded(Panicked)` outcome whose value is the
    /// query's `f(tag)` upper bound; the worker's estimator is discarded
    /// and rebuilt, so later queries on that worker never see
    /// mid-mutation state. The fault harness injects through `f` to prove
    /// those properties hold.
    pub fn try_estimate_batch_with<F>(&self, queries: &[Query], f: F) -> Vec<EstimateOutcome>
    where
        F: Fn(&Estimator<'s>, &Query) -> EstimateOutcome + Sync,
    {
        let summary = self.summary;
        let masks = &self.masks;
        let adjacency = &self.adjacency;
        let join_cache = &self.join_cache;
        let est_cache = &self.est_cache;
        let kernel = self.kernel;
        let results = xpe_par::par_map_init_chunked_isolated(
            self.threads,
            queries.len(),
            0,
            || {
                Estimator::with_caches(
                    summary,
                    Arc::clone(masks),
                    Arc::clone(adjacency),
                    join_cache.clone(),
                )
                .with_estimate_cache(est_cache.clone())
                .with_kernel(kernel)
            },
            |est, i| f(est, &queries[i]),
        );
        results
            .into_iter()
            .zip(queries)
            .map(|(r, q)| {
                let out = match r {
                    Ok(out) => out,
                    Err(panic) => {
                        let cap = self.local.tag_cap(q);
                        EstimateOutcome {
                            value: finalize_estimate(cap, cap),
                            status: EstimateStatus::Degraded {
                                reason: DegradedReason::Panicked {
                                    message: panic.message,
                                },
                            },
                        }
                    }
                };
                self.outcomes.tally(&out);
                out
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_synopsis::SummaryConfig;
    use xpe_xpath::parse_query;

    const QUERIES: &[&str] = &[
        "//A//C",
        "//A[/C/F]/B/D",
        "//C[/$E]/F",
        "/Root//E",
        "//A[/C[/F]/folls::$B/D]",
        "//A/Zebra",
        "//D/A",
        "//A[/C/foll::$B]",
    ];

    fn summary() -> Summary {
        Summary::build(
            &xpe_xml::fixtures::paper_figure1(),
            SummaryConfig::default(),
        )
    }

    #[test]
    fn batch_matches_serial_estimates_bitwise() {
        let s = summary();
        let queries: Vec<Query> = QUERIES
            .iter()
            .cycle()
            .take(64)
            .map(|q| parse_query(q).unwrap())
            .collect();
        let reference = Estimator::new(&s);
        let serial: Vec<f64> = queries.iter().map(|q| reference.estimate(q)).collect();
        for threads in [0, 1, 2, 4] {
            let engine = EstimationEngine::new(&s).with_threads(threads);
            let batch = engine.estimate_batch(&queries);
            assert_eq!(
                batch.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn engine_estimate_agrees_with_plain_estimator() {
        let s = summary();
        let engine = EstimationEngine::new(&s);
        let est = Estimator::new(&s);
        for q in QUERIES {
            assert_eq!(
                engine.estimate_str(q).unwrap().to_bits(),
                est.estimate_str(q).unwrap().to_bits(),
                "{q}"
            );
        }
    }

    #[test]
    fn every_kernel_yields_bitwise_identical_estimates() {
        let s = summary();
        let queries: Vec<Query> = QUERIES
            .iter()
            .cycle()
            .take(32)
            .map(|q| parse_query(q).unwrap())
            .collect();
        let reference: Vec<u64> = EstimationEngine::new(&s)
            .with_kernel(JoinKernel::Naive)
            .estimate_batch(&queries)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        for kernel in [JoinKernel::Indexed, JoinKernel::Bitmap] {
            for threads in [1, 2] {
                let engine = EstimationEngine::new(&s)
                    .with_threads(threads)
                    .with_kernel(kernel);
                assert_eq!(engine.kernel(), kernel);
                let got: Vec<u64> = engine
                    .estimate_batch(&queries)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(got, reference, "kernel={kernel:?} threads={threads}");
            }
        }
        // Rebuilding the join cache preserves the kernel selection.
        let rebuilt = EstimationEngine::new(&s)
            .with_kernel(JoinKernel::Indexed)
            .with_join_cache_capacity(8);
        assert_eq!(rebuilt.kernel(), JoinKernel::Indexed);
    }

    #[test]
    fn adjacency_served_edges_never_touch_the_mask_cache() {
        // Masks are resolved lazily: an edge served by a containment
        // adjacency folds the mask test into its pair relation, so
        // materializing the mask too would be a wasted cache probe. With
        // the adjacency index live (it always is inside an engine), the
        // shared mask cache must therefore stay cold across a whole batch.
        let s = summary();
        let engine = EstimationEngine::new(&s)
            .with_threads(2)
            .with_kernel(JoinKernel::Indexed);
        assert!(engine.mask_cache().is_empty());
        let queries: Vec<Query> = QUERIES.iter().map(|q| parse_query(q).unwrap()).collect();
        engine.estimate_batch(&queries);
        assert!(
            engine.mask_cache().is_empty(),
            "no mask materialized for adjacency-served edges"
        );
        assert!(!engine.adjacency_cache().is_empty());
    }

    #[test]
    fn rebuilding_join_cache_carries_outcome_counters() {
        let s = summary();
        let engine = EstimationEngine::new(&s);
        let q = parse_query("//A//C").unwrap();
        engine.try_estimate(&q);
        engine.try_estimate(&q);
        assert_eq!(engine.kernel_stats().outcomes_ok, 2);
        let rebuilt = engine.with_join_cache_capacity(8);
        assert_eq!(
            rebuilt.kernel_stats().outcomes_ok,
            2,
            "lifetime outcome tallies survive a cache capacity change"
        );
        rebuilt.try_estimate(&q);
        assert_eq!(rebuilt.kernel_stats().outcomes_ok, 3);
    }

    #[test]
    fn empty_batch_is_empty() {
        let s = summary();
        let engine = EstimationEngine::new(&s);
        assert!(engine.estimate_batch(&[]).is_empty());
    }

    #[test]
    fn join_cache_is_shared_across_batch_workers() {
        let s = summary();
        let engine = EstimationEngine::new(&s).with_threads(2);
        // Repeated skeletons across the batch must hit the shared cache.
        let queries: Vec<Query> = QUERIES
            .iter()
            .cycle()
            .take(48)
            .map(|q| parse_query(q).unwrap())
            .collect();
        engine.estimate_batch(&queries);
        let stats = engine.kernel_stats();
        assert!(stats.join_cache_hits > 0, "{stats:?}");
        assert!(stats.join_cache_hit_rate > 0.0);
        // The adjacency index was consulted and built per tag pair.
        // Workers racing on a cold key may both build (first insert
        // wins), so the build count can exceed the memoized count but
        // never trail it.
        assert!(stats.adjacency_builds > 0, "{stats:?}");
        assert!(
            stats.adjacency_builds >= engine.adjacency_cache().len() as u64,
            "{stats:?}"
        );
    }

    /// The headline concurrency contract: once every cache layer is warm,
    /// an estimate acquires **zero** shared locks — join lookups are
    /// served by the worker-private cache, adjacencies/seeds/masks by the
    /// estimator's flat memo, and nothing needs a snapshot refresh
    /// because nothing gets published.
    #[test]
    fn warm_estimates_take_zero_locks() {
        let s = summary();
        for kernel in [JoinKernel::Indexed, JoinKernel::Bitmap] {
            let engine = EstimationEngine::new(&s).with_kernel(kernel);
            let queries: Vec<Query> = QUERIES.iter().map(|q| parse_query(q).unwrap()).collect();
            // Cold pass warms every layer through the resident estimator.
            for q in &queries {
                engine.estimate(q);
            }
            // This flushes the cold pass's pending publications (counted
            // into `before`) and reads the lock tally lock-free.
            let before = engine.kernel_stats();
            for q in &queries {
                engine.estimate(q);
            }
            let after = engine.kernel_stats();
            assert_eq!(
                after.lock_acquisitions,
                before.lock_acquisitions,
                "{}: warm estimates must not take any shared-cache lock",
                kernel.name()
            );
            assert!(
                after.estimate_cache_hits > before.estimate_cache_hits,
                "{}: the warm pass was served by the full-query cache",
                kernel.name()
            );
            assert_eq!(
                after.estimate_cache_misses,
                before.estimate_cache_misses,
                "{}: nothing in the warm pass missed",
                kernel.name()
            );
        }
    }

    /// The zero-lock warm-path contract holds one layer down as well:
    /// with the full-query cache disabled, warm traffic is served by the
    /// join cache through the worker-private front without locking.
    #[test]
    fn warm_estimates_without_the_estimate_cache_still_take_zero_locks() {
        let s = summary();
        for kernel in [JoinKernel::Indexed, JoinKernel::Bitmap] {
            let engine = EstimationEngine::new(&s)
                .with_kernel(kernel)
                .with_estimate_cache_capacity(0);
            assert!(engine.estimate_cache().is_none());
            let queries: Vec<Query> = QUERIES.iter().map(|q| parse_query(q).unwrap()).collect();
            for q in &queries {
                engine.estimate(q);
            }
            let before = engine.kernel_stats();
            for q in &queries {
                engine.estimate(q);
            }
            let after = engine.kernel_stats();
            assert_eq!(
                after.lock_acquisitions,
                before.lock_acquisitions,
                "{}: warm estimates must not take any shared-cache lock",
                kernel.name()
            );
            assert!(
                after.join_cache_hits > before.join_cache_hits,
                "{}: the warm pass was served by the join cache",
                kernel.name()
            );
            assert_eq!(after.estimate_cache_hits, 0);
            assert_eq!(after.estimate_cache_misses, 0);
        }
    }

    #[test]
    fn zero_capacity_disables_the_join_cache() {
        let s = summary();
        let engine = EstimationEngine::new(&s).with_join_cache_capacity(0);
        assert!(engine.join_cache().is_none());
        let queries: Vec<Query> = QUERIES.iter().map(|q| parse_query(q).unwrap()).collect();
        let batch = engine.estimate_batch(&queries);
        let stats = engine.kernel_stats();
        assert_eq!(stats.join_cache_hits, 0);
        assert_eq!(stats.join_cache_misses, 0);
        // And the estimates match a default (cached) engine bitwise.
        let cached = EstimationEngine::new(&s);
        let with_cache = cached.estimate_batch(&queries);
        assert_eq!(
            batch.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            with_cache.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    /// A quiet panic hook for isolation tests: the default hook prints a
    /// backtrace banner per caught panic, which floods test output.
    fn hushed<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn try_batch_matches_estimate_batch_when_unconstrained() {
        let s = summary();
        let queries: Vec<Query> = QUERIES
            .iter()
            .cycle()
            .take(32)
            .map(|q| parse_query(q).unwrap())
            .collect();
        for threads in [1, 4] {
            let engine = EstimationEngine::new(&s).with_threads(threads);
            let plain = engine.estimate_batch(&queries);
            let outcomes = engine.try_estimate_batch(&queries);
            assert_eq!(outcomes.len(), plain.len());
            for (out, v) in outcomes.iter().zip(&plain) {
                assert_eq!(out.status, crate::EstimateStatus::Ok);
                assert_eq!(out.value.to_bits(), v.to_bits());
            }
            let stats = engine.kernel_stats();
            assert_eq!(stats.outcomes_ok, queries.len() as u64);
            assert_eq!(stats.outcomes_degraded, 0);
            assert_eq!(stats.outcomes_rejected, 0);
            assert_eq!(stats.worker_panics, 0);
        }
    }

    #[test]
    fn one_poisoned_query_degrades_only_its_slot() {
        hushed(|| {
            let s = summary();
            let queries: Vec<Query> = QUERIES
                .iter()
                .cycle()
                .take(24)
                .map(|q| parse_query(q).unwrap())
                .collect();
            let poisoned = 7usize;
            for threads in [1, 4] {
                let engine = EstimationEngine::new(&s).with_threads(threads);
                let serial = engine.estimate_batch(&queries);
                let outcomes = engine.try_estimate_batch_with(&queries, |est, q| {
                    if std::ptr::eq(q, &queries[poisoned]) {
                        panic!("injected poison");
                    }
                    est.try_estimate(
                        q,
                        &crate::QueryLimits::unlimited(),
                        &crate::Budget::unlimited(),
                    )
                });
                assert_eq!(outcomes.len(), queries.len());
                for (i, out) in outcomes.iter().enumerate() {
                    if i == poisoned {
                        match &out.status {
                            crate::EstimateStatus::Degraded {
                                reason: crate::DegradedReason::Panicked { message },
                            } => assert!(message.contains("injected poison")),
                            other => panic!("slot {i}: expected panic outcome, got {other:?}"),
                        }
                        // Even the poisoned slot reports the f(tag) bound.
                        let cap = s.tag_total(&queries[i].node(queries[i].target()).tag);
                        assert_eq!(out.value, cap);
                    } else {
                        assert_eq!(out.status, crate::EstimateStatus::Ok, "slot {i}");
                        assert_eq!(
                            out.value.to_bits(),
                            serial[i].to_bits(),
                            "slot {i} must be bit-identical despite the poisoned neighbor"
                        );
                    }
                }
                let stats = engine.kernel_stats();
                assert_eq!(stats.worker_panics, 1, "threads={threads}");
                assert_eq!(stats.outcomes_degraded, 1);
            }
        });
    }

    #[test]
    fn no_panic_escapes_try_estimate_batch() {
        hushed(|| {
            let s = summary();
            let queries: Vec<Query> = QUERIES.iter().map(|q| parse_query(q).unwrap()).collect();
            let engine = EstimationEngine::new(&s).with_threads(2);
            let escaped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                engine.try_estimate_batch_with(&queries, |_, _| panic!("every query dies"))
            }));
            let outcomes = escaped.expect("try_estimate_batch must never panic");
            assert_eq!(outcomes.len(), queries.len());
            assert!(outcomes.iter().all(|o| matches!(
                o.status,
                crate::EstimateStatus::Degraded {
                    reason: crate::DegradedReason::Panicked { .. }
                }
            )));
            assert_eq!(engine.kernel_stats().worker_panics, queries.len() as u64);
        });
    }

    #[test]
    fn engine_limits_and_budget_flow_through_batch() {
        let s = summary();
        let engine = EstimationEngine::new(&s)
            .with_threads(2)
            .with_limits(crate::QueryLimits {
                max_nodes: Some(2),
                ..crate::QueryLimits::unlimited()
            });
        let queries: Vec<Query> = ["//A//C", "//A[/C/F]/B/D"]
            .iter()
            .map(|q| parse_query(q).unwrap())
            .collect();
        let outcomes = engine.try_estimate_batch(&queries);
        assert_eq!(outcomes[0].status, crate::EstimateStatus::Ok);
        assert!(outcomes[1].status.is_rejected(), "{:?}", outcomes[1]);
        let stats = engine.kernel_stats();
        assert_eq!(stats.outcomes_ok, 1);
        assert_eq!(stats.outcomes_rejected, 1);
        // Rebuilding the cache keeps the policy.
        let rebuilt = engine.with_join_cache_capacity(8);
        assert_eq!(rebuilt.limits().max_nodes, Some(2));
    }

    #[test]
    fn starved_budget_degrades_but_never_pollutes_the_join_cache() {
        let s = summary();
        let engine = EstimationEngine::new(&s)
            .with_threads(1)
            .with_budget(crate::Budget {
                deadline: None,
                max_join_edges: Some(0),
            });
        let query = parse_query("//A[/C/F]/B/D").unwrap();
        let out = engine.try_estimate(&query);
        assert_eq!(
            out.status,
            crate::EstimateStatus::Degraded {
                reason: crate::DegradedReason::JoinBudget
            }
        );
        // The truncated join was never published: a healthy engine
        // sharing nothing still computes the exact value, and this
        // engine's own infallible path is unaffected by the stale cache.
        let exact = Estimator::new(&s).estimate(&query);
        assert_eq!(engine.estimate(&query).to_bits(), exact.to_bits());
    }

    #[test]
    fn cached_rerun_is_bitwise_stable() {
        // A warm join cache serves results computed in the first run; the
        // second run must still be bit-identical to the first. The
        // full-query cache is disabled so the rerun actually exercises
        // the join layer instead of being served above it.
        let s = summary();
        let engine = EstimationEngine::new(&s)
            .with_threads(2)
            .with_estimate_cache_capacity(0);
        let queries: Vec<Query> = QUERIES.iter().map(|q| parse_query(q).unwrap()).collect();
        let first = engine.estimate_batch(&queries);
        let second = engine.estimate_batch(&queries);
        assert_eq!(
            first.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            second.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        assert!(engine.kernel_stats().join_cache_hits > 0);
    }

    #[test]
    fn estimate_cache_serves_bit_identical_values() {
        // Cached reruns across every entry point agree bitwise with an
        // engine that has the full-query cache disabled.
        let s = summary();
        let queries: Vec<Query> = QUERIES
            .iter()
            .cycle()
            .take(32)
            .map(|q| parse_query(q).unwrap())
            .collect();
        for threads in [1, 2] {
            let cached = EstimationEngine::new(&s).with_threads(threads);
            let uncached = EstimationEngine::new(&s)
                .with_threads(threads)
                .with_estimate_cache_capacity(0);
            let cold = cached.estimate_batch(&queries);
            let warm = cached.estimate_batch(&queries);
            let plain = uncached.estimate_batch(&queries);
            assert_eq!(
                cold.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={threads}: cold cached pass"
            );
            assert_eq!(
                warm.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={threads}: warm cached pass"
            );
            let stats = cached.kernel_stats();
            assert!(stats.estimate_cache_hits > 0, "{stats:?}");
            assert!(stats.estimate_cache_inserts > 0, "{stats:?}");
            assert!(stats.estimate_cache_hit_rate > 0.0);
        }
    }

    #[test]
    fn rebuilding_estimate_cache_carries_outcome_counters_and_policy() {
        let s = summary();
        let engine = EstimationEngine::new(&s)
            .with_kernel(JoinKernel::Indexed)
            .with_limits(crate::QueryLimits {
                max_nodes: Some(8),
                ..crate::QueryLimits::unlimited()
            });
        let q = parse_query("//A//C").unwrap();
        engine.try_estimate(&q);
        let rebuilt = engine.with_estimate_cache_capacity(64);
        assert_eq!(rebuilt.kernel_stats().outcomes_ok, 1);
        assert_eq!(rebuilt.kernel(), JoinKernel::Indexed);
        assert_eq!(rebuilt.limits().max_nodes, Some(8));
        assert_eq!(rebuilt.estimate_cache().unwrap().capacity(), 64);
        // The join cache survives the rebuild at its previous capacity.
        assert!(rebuilt.join_cache().is_some());
    }
}
