//! The batched estimation engine — the throughput layer over
//! [`Estimator`].
//!
//! A single [`Estimator`] already memoizes relation masks and recycles
//! join allocations; the engine adds workload-level machinery on top:
//! one shared mask cache that every worker warms for the others, and
//! [`estimate_batch`](EstimationEngine::estimate_batch), which fans a
//! query slice across scoped worker threads. Each worker owns one
//! estimator (scratch arenas never cross threads) while all of them read
//! the same summary and memo table. Results come back in input order and
//! are bit-identical to a serial `estimate` loop — estimates are pure
//! functions of `(summary, query)`; the caches only change how fast they
//! are produced.

use std::sync::Arc;

use xpe_pathid::RelationMaskCache;
use xpe_synopsis::Summary;
use xpe_xpath::{Query, QueryParseError};

use crate::estimator::Estimator;

/// Batch-capable estimation engine over a prebuilt [`Summary`].
pub struct EstimationEngine<'s> {
    summary: &'s Summary,
    masks: Arc<RelationMaskCache>,
    threads: usize,
    local: Estimator<'s>,
}

impl<'s> EstimationEngine<'s> {
    /// Creates an engine with one worker per available core.
    pub fn new(summary: &'s Summary) -> Self {
        let masks = Arc::new(RelationMaskCache::new());
        EstimationEngine {
            summary,
            masks: Arc::clone(&masks),
            threads: 0,
            local: Estimator::with_mask_cache(summary, masks),
        }
    }

    /// Sets the batch worker count: `0` uses one worker per available
    /// core, `1` runs batches serially, any other value is taken
    /// literally.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configured worker count (`0` = auto).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The summary the engine estimates against.
    pub fn summary(&self) -> &'s Summary {
        self.summary
    }

    /// The shared relation-mask memo table (grows as queries run).
    pub fn mask_cache(&self) -> &Arc<RelationMaskCache> {
        &self.masks
    }

    /// A fresh estimator sharing this engine's mask cache — for callers
    /// that want to drive queries themselves (e.g. one per thread).
    pub fn estimator(&self) -> Estimator<'s> {
        Estimator::with_mask_cache(self.summary, Arc::clone(&self.masks))
    }

    /// Estimates one query on the engine's resident estimator.
    pub fn estimate(&self, query: &Query) -> f64 {
        self.local.estimate(query)
    }

    /// Parses and estimates one query string.
    pub fn estimate_str(&self, query: &str) -> Result<f64, QueryParseError> {
        self.local.estimate_str(query)
    }

    /// Estimates every query, fanning across the configured worker count;
    /// `out[i]` is the estimate of `queries[i]`. Bit-identical to calling
    /// [`estimate`](Self::estimate) per query in order.
    pub fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        let summary = self.summary;
        let masks = &self.masks;
        xpe_par::par_map_init(
            self.threads,
            queries.len(),
            || Estimator::with_mask_cache(summary, Arc::clone(masks)),
            |est, i| est.estimate(&queries[i]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_synopsis::SummaryConfig;
    use xpe_xpath::parse_query;

    const QUERIES: &[&str] = &[
        "//A//C",
        "//A[/C/F]/B/D",
        "//C[/$E]/F",
        "/Root//E",
        "//A[/C[/F]/folls::$B/D]",
        "//A/Zebra",
        "//D/A",
        "//A[/C/foll::$B]",
    ];

    fn summary() -> Summary {
        Summary::build(
            &xpe_xml::fixtures::paper_figure1(),
            SummaryConfig::default(),
        )
    }

    #[test]
    fn batch_matches_serial_estimates_bitwise() {
        let s = summary();
        let queries: Vec<Query> = QUERIES
            .iter()
            .cycle()
            .take(64)
            .map(|q| parse_query(q).unwrap())
            .collect();
        let reference = Estimator::new(&s);
        let serial: Vec<f64> = queries.iter().map(|q| reference.estimate(q)).collect();
        for threads in [0, 1, 2, 4] {
            let engine = EstimationEngine::new(&s).with_threads(threads);
            let batch = engine.estimate_batch(&queries);
            assert_eq!(
                batch.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn engine_estimate_agrees_with_plain_estimator() {
        let s = summary();
        let engine = EstimationEngine::new(&s);
        let est = Estimator::new(&s);
        for q in QUERIES {
            assert_eq!(
                engine.estimate_str(q).unwrap().to_bits(),
                est.estimate_str(q).unwrap().to_bits(),
                "{q}"
            );
        }
    }

    #[test]
    fn batch_warms_the_shared_mask_cache() {
        let s = summary();
        let engine = EstimationEngine::new(&s).with_threads(2);
        assert!(engine.mask_cache().is_empty());
        let queries: Vec<Query> = QUERIES.iter().map(|q| parse_query(q).unwrap()).collect();
        engine.estimate_batch(&queries);
        let warmed = engine.mask_cache().len();
        assert!(warmed > 0);
        // A second run reuses the memo table instead of growing it.
        engine.estimate_batch(&queries);
        assert_eq!(engine.mask_cache().len(), warmed);
    }

    #[test]
    fn empty_batch_is_empty() {
        let s = summary();
        let engine = EstimationEngine::new(&s);
        assert!(engine.estimate_batch(&[]).is_empty());
    }
}
