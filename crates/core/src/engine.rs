//! The batched estimation engine — the throughput layer over
//! [`Estimator`].
//!
//! A single [`Estimator`] already memoizes relation masks and recycles
//! join allocations; the engine adds workload-level machinery on top:
//! a shared mask cache, a shared containment-adjacency index, and a
//! workload-level [`JoinCache`] that every worker warms for the others,
//! plus [`estimate_batch`](EstimationEngine::estimate_batch), which fans a
//! query slice across scoped worker threads. Each worker owns one
//! estimator (scratch arenas never cross threads) while all of them read
//! the same summary and memo tables. Results come back in input order and
//! are bit-identical to a serial `estimate` loop — estimates are pure
//! functions of `(summary, query)`; the caches only change how fast they
//! are produced.

use std::sync::Arc;

use xpe_pathid::{JoinIndexCache, RelationMaskCache};
use xpe_synopsis::Summary;
use xpe_xpath::{Query, QueryParseError};

use crate::estimator::Estimator;
use crate::joincache::JoinCache;

/// Default number of join results the engine's workload cache retains.
/// Generously sized for template workloads (hundreds of distinct
/// skeletons) while bounding memory on adversarial ones.
pub const DEFAULT_JOIN_CACHE_CAPACITY: usize = 1024;

/// Kernel counters of one engine's lifetime, for benchmark reports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelStats {
    /// Join-cache lookups that found a memoized result.
    pub join_cache_hits: u64,
    /// Join-cache lookups that ran the join kernel.
    pub join_cache_misses: u64,
    /// `hits / (hits + misses)`, or 0 before any lookup.
    pub join_cache_hit_rate: f64,
    /// Containment adjacencies built (distinct `(tag, tag, axis)` triples).
    pub adjacency_builds: u64,
    /// Total wall-clock milliseconds spent building adjacencies.
    pub adjacency_build_ms: f64,
    /// Total `(pid_u, pid_v)` pairs materialized across all adjacencies.
    pub adjacency_pairs: u64,
}

/// Batch-capable estimation engine over a prebuilt [`Summary`].
pub struct EstimationEngine<'s> {
    summary: &'s Summary,
    masks: Arc<RelationMaskCache>,
    adjacency: Arc<JoinIndexCache>,
    join_cache: Option<Arc<JoinCache>>,
    threads: usize,
    local: Estimator<'s>,
}

impl<'s> EstimationEngine<'s> {
    /// Creates an engine with one worker per available core and the
    /// default join-cache capacity.
    pub fn new(summary: &'s Summary) -> Self {
        Self::with_parts(summary, 0, DEFAULT_JOIN_CACHE_CAPACITY)
    }

    fn with_parts(summary: &'s Summary, threads: usize, join_cache_capacity: usize) -> Self {
        let masks = Arc::new(RelationMaskCache::new());
        let adjacency = Arc::new(JoinIndexCache::new());
        let join_cache = (join_cache_capacity > 0)
            .then(|| Arc::new(JoinCache::with_capacity(join_cache_capacity)));
        EstimationEngine {
            summary,
            masks: Arc::clone(&masks),
            adjacency: Arc::clone(&adjacency),
            join_cache: join_cache.clone(),
            threads,
            local: Estimator::with_caches(summary, masks, adjacency, join_cache),
        }
    }

    /// Sets the batch worker count: `0` uses one worker per available
    /// core, `1` runs batches serially, any other value is taken
    /// literally.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets how many join results the workload-level join cache retains;
    /// `0` disables join caching entirely.
    pub fn with_join_cache_capacity(self, capacity: usize) -> Self {
        Self::with_parts(self.summary, self.threads, capacity)
    }

    /// The configured worker count (`0` = auto).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The summary the engine estimates against.
    pub fn summary(&self) -> &'s Summary {
        self.summary
    }

    /// The shared relation-mask memo table (grows as queries run).
    pub fn mask_cache(&self) -> &Arc<RelationMaskCache> {
        &self.masks
    }

    /// The shared containment-adjacency index (grows as queries run).
    pub fn adjacency_cache(&self) -> &Arc<JoinIndexCache> {
        &self.adjacency
    }

    /// The workload-level join cache, if enabled.
    pub fn join_cache(&self) -> Option<&Arc<JoinCache>> {
        self.join_cache.as_ref()
    }

    /// Kernel counters accumulated over this engine's lifetime.
    pub fn kernel_stats(&self) -> KernelStats {
        let (hits, misses, rate) = match &self.join_cache {
            Some(c) => (c.hits(), c.misses(), c.hit_rate()),
            None => (0, 0, 0.0),
        };
        KernelStats {
            join_cache_hits: hits,
            join_cache_misses: misses,
            join_cache_hit_rate: rate,
            adjacency_builds: self.adjacency.builds(),
            adjacency_build_ms: self.adjacency.build_ms(),
            adjacency_pairs: self.adjacency.pair_total(),
        }
    }

    /// A fresh estimator sharing this engine's caches — for callers that
    /// want to drive queries themselves (e.g. one per thread).
    pub fn estimator(&self) -> Estimator<'s> {
        Estimator::with_caches(
            self.summary,
            Arc::clone(&self.masks),
            Arc::clone(&self.adjacency),
            self.join_cache.clone(),
        )
    }

    /// Estimates one query on the engine's resident estimator.
    pub fn estimate(&self, query: &Query) -> f64 {
        self.local.estimate(query)
    }

    /// Parses and estimates one query string.
    pub fn estimate_str(&self, query: &str) -> Result<f64, QueryParseError> {
        self.local.estimate_str(query)
    }

    /// Estimates every query, fanning across the configured worker count;
    /// `out[i]` is the estimate of `queries[i]`. Bit-identical to calling
    /// [`estimate`](Self::estimate) per query in order.
    pub fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        let summary = self.summary;
        let masks = &self.masks;
        let adjacency = &self.adjacency;
        let join_cache = &self.join_cache;
        xpe_par::par_map_init(
            self.threads,
            queries.len(),
            || {
                Estimator::with_caches(
                    summary,
                    Arc::clone(masks),
                    Arc::clone(adjacency),
                    join_cache.clone(),
                )
            },
            |est, i| est.estimate(&queries[i]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_synopsis::SummaryConfig;
    use xpe_xpath::parse_query;

    const QUERIES: &[&str] = &[
        "//A//C",
        "//A[/C/F]/B/D",
        "//C[/$E]/F",
        "/Root//E",
        "//A[/C[/F]/folls::$B/D]",
        "//A/Zebra",
        "//D/A",
        "//A[/C/foll::$B]",
    ];

    fn summary() -> Summary {
        Summary::build(
            &xpe_xml::fixtures::paper_figure1(),
            SummaryConfig::default(),
        )
    }

    #[test]
    fn batch_matches_serial_estimates_bitwise() {
        let s = summary();
        let queries: Vec<Query> = QUERIES
            .iter()
            .cycle()
            .take(64)
            .map(|q| parse_query(q).unwrap())
            .collect();
        let reference = Estimator::new(&s);
        let serial: Vec<f64> = queries.iter().map(|q| reference.estimate(q)).collect();
        for threads in [0, 1, 2, 4] {
            let engine = EstimationEngine::new(&s).with_threads(threads);
            let batch = engine.estimate_batch(&queries);
            assert_eq!(
                batch.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn engine_estimate_agrees_with_plain_estimator() {
        let s = summary();
        let engine = EstimationEngine::new(&s);
        let est = Estimator::new(&s);
        for q in QUERIES {
            assert_eq!(
                engine.estimate_str(q).unwrap().to_bits(),
                est.estimate_str(q).unwrap().to_bits(),
                "{q}"
            );
        }
    }

    #[test]
    fn batch_warms_the_shared_mask_cache() {
        let s = summary();
        let engine = EstimationEngine::new(&s).with_threads(2);
        assert!(engine.mask_cache().is_empty());
        let queries: Vec<Query> = QUERIES.iter().map(|q| parse_query(q).unwrap()).collect();
        engine.estimate_batch(&queries);
        let warmed = engine.mask_cache().len();
        assert!(warmed > 0);
        // A second run reuses the memo table instead of growing it.
        engine.estimate_batch(&queries);
        assert_eq!(engine.mask_cache().len(), warmed);
    }

    #[test]
    fn empty_batch_is_empty() {
        let s = summary();
        let engine = EstimationEngine::new(&s);
        assert!(engine.estimate_batch(&[]).is_empty());
    }

    #[test]
    fn join_cache_is_shared_across_batch_workers() {
        let s = summary();
        let engine = EstimationEngine::new(&s).with_threads(2);
        // Repeated skeletons across the batch must hit the shared cache.
        let queries: Vec<Query> = QUERIES
            .iter()
            .cycle()
            .take(48)
            .map(|q| parse_query(q).unwrap())
            .collect();
        engine.estimate_batch(&queries);
        let stats = engine.kernel_stats();
        assert!(stats.join_cache_hits > 0, "{stats:?}");
        assert!(stats.join_cache_hit_rate > 0.0);
        // The adjacency index was consulted and built per tag pair.
        assert!(stats.adjacency_builds > 0, "{stats:?}");
        assert_eq!(
            stats.adjacency_builds,
            engine.adjacency_cache().len() as u64
        );
    }

    #[test]
    fn zero_capacity_disables_the_join_cache() {
        let s = summary();
        let engine = EstimationEngine::new(&s).with_join_cache_capacity(0);
        assert!(engine.join_cache().is_none());
        let queries: Vec<Query> = QUERIES.iter().map(|q| parse_query(q).unwrap()).collect();
        let batch = engine.estimate_batch(&queries);
        let stats = engine.kernel_stats();
        assert_eq!(stats.join_cache_hits, 0);
        assert_eq!(stats.join_cache_misses, 0);
        // And the estimates match a default (cached) engine bitwise.
        let cached = EstimationEngine::new(&s);
        let with_cache = cached.estimate_batch(&queries);
        assert_eq!(
            batch.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            with_cache.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn cached_rerun_is_bitwise_stable() {
        // A warm join cache serves results computed in the first run; the
        // second run must still be bit-identical to the first.
        let s = summary();
        let engine = EstimationEngine::new(&s).with_threads(2);
        let queries: Vec<Query> = QUERIES.iter().map(|q| parse_query(q).unwrap()).collect();
        let first = engine.estimate_batch(&queries);
        let second = engine.estimate_batch(&queries);
        assert_eq!(
            first.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            second.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        assert!(engine.kernel_stats().join_cache_hits > 0);
    }
}
