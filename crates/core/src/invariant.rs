//! Numeric invariant guards for the estimation formulas.
//!
//! Every §4–§5 formula is a ratio of joined frequencies, and every ratio
//! is a place where a `0/0`, a subnormal denominator, or an accumulated
//! rounding artifact can turn one figure of an experiment into `NaN` or
//! `inf` without any test noticing. The path-summary literature is blunt
//! about this failure class: summary-based estimates must degrade
//! gracefully — never to NaN, negatives, or counts above the document.
//!
//! Two chokepoints enforce that here:
//!
//! * [`safe_div`] — the only way estimator code divides. Denominators that
//!   are zero, subnormal, infinite or NaN yield `0.0` (an empty
//!   denominator population means an empty result), as does a quotient
//!   that overflows to `inf`.
//! * [`finalize_estimate`] — the single exit gate for
//!   [`Estimator::estimate`](crate::Estimator::estimate): clamps to
//!   `[0, f(tag)]` (a target never selects more nodes than the document
//!   holds of its tag) and `debug_assert!`s finiteness so a regressed
//!   formula trips the differential harness (`xpe diff`, `xpe-diff`)
//!   instead of silently corrupting a figure.

/// Guarded division: `num / den`, except that a denominator with no usable
/// magnitude — zero, subnormal, `inf` or `NaN` — returns `0.0`, and so
/// does a quotient that leaves the finite range.
///
/// The zero-for-degenerate convention matches the estimation semantics:
/// every denominator in Eqs. 2–5 is the selectivity of a query the target
/// embedding must pass through, so "no such embeddings" means the
/// constrained count is zero, not undefined.
#[inline]
pub fn safe_div(num: f64, den: f64) -> f64 {
    if !den.is_normal() {
        return 0.0;
    }
    let q = num / den;
    if q.is_finite() {
        q
    } else {
        0.0
    }
}

/// The single exit gate for selectivity estimates: clamps `raw` to
/// `[0, cap]` where `cap` is the target tag's total frequency, mapping
/// non-finite inputs to the nearest bound (`NaN` to `0`).
///
/// In debug builds a non-finite `raw` is a bug — some formula dodged
/// [`safe_div`] — and panics immediately; release builds degrade to the
/// clamped value so a served estimate is always a valid cardinality.
#[inline]
pub fn finalize_estimate(raw: f64, cap: f64) -> f64 {
    debug_assert!(
        raw.is_finite(),
        "estimate escaped the division guards: {raw}"
    );
    let cap = if cap.is_finite() {
        cap.max(0.0)
    } else {
        f64::MAX
    };
    if raw.is_nan() {
        return 0.0;
    }
    raw.clamp(0.0, cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_div_ordinary_ratio() {
        assert_eq!(safe_div(6.0, 3.0), 2.0);
        assert_eq!(safe_div(0.0, 3.0), 0.0);
    }

    #[test]
    fn safe_div_zero_denominator_is_zero_not_nan() {
        assert_eq!(safe_div(0.0, 0.0), 0.0);
        assert_eq!(safe_div(5.0, 0.0), 0.0);
        assert_eq!(safe_div(5.0, -0.0), 0.0);
    }

    #[test]
    fn safe_div_subnormal_denominator_is_zero_not_inf() {
        // An unguarded `x / subnormal` overflows to inf for any x ≳ 1e16;
        // an exact `== 0.0` comparison does not catch it.
        let sub = f64::MIN_POSITIVE / 2.0;
        assert!(sub > 0.0 && !sub.is_normal());
        assert_eq!(safe_div(1e18, sub), 0.0);
        assert_eq!(safe_div(1.0, sub), 0.0);
    }

    #[test]
    fn safe_div_overflowing_quotient_is_zero() {
        // Normal denominator, but the quotient still overflows.
        assert_eq!(safe_div(f64::MAX, 0.5), 0.0);
        assert_eq!(safe_div(f64::MAX, f64::MIN_POSITIVE), 0.0);
    }

    #[test]
    fn safe_div_pathological_denominators() {
        assert_eq!(safe_div(1.0, f64::NAN), 0.0);
        assert_eq!(safe_div(1.0, f64::INFINITY), 0.0);
        assert_eq!(safe_div(1.0, f64::NEG_INFINITY), 0.0);
    }

    #[test]
    fn finalize_clamps_range() {
        assert_eq!(finalize_estimate(3.0, 10.0), 3.0);
        assert_eq!(finalize_estimate(-0.5, 10.0), 0.0);
        assert_eq!(finalize_estimate(12.0, 10.0), 10.0);
        assert_eq!(finalize_estimate(1.0, 0.0), 0.0);
        assert_eq!(finalize_estimate(1.0, -3.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "estimate escaped the division guards")]
    #[cfg(debug_assertions)]
    fn finalize_panics_on_nan_in_debug() {
        finalize_estimate(f64::NAN, 10.0);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn finalize_degrades_gracefully_in_release() {
        assert_eq!(finalize_estimate(f64::NAN, 10.0), 0.0);
        assert_eq!(finalize_estimate(f64::INFINITY, 10.0), 10.0);
        assert_eq!(finalize_estimate(f64::NEG_INFINITY, 10.0), 0.0);
    }
}
