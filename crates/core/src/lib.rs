//! The XPath selectivity estimator of *An Estimation System for XPath
//! Expressions* (ICDE 2006) — the paper's primary contribution.
//!
//! Given a [`Summary`](xpe_synopsis::Summary) built from a document, the
//! [`Estimator`] answers "how many nodes will this XPath expression's
//! target step select?" without touching the document:
//!
//! * the **path join** ([`path_join`]) prunes each query node's candidate
//!   path ids by bitwise containment plus tag-relationship checks (§4);
//! * **simple** queries are then exact in the surviving frequencies
//!   (Theorem 4.1), **branch** queries use the Node Independence
//!   Assumption (Eq. 2);
//! * **order-axis** queries combine the order-free estimates with
//!   o-histogram lookups under the Node Order / Node Containment
//!   Uniformity Assumptions (Eqs. 3–5), and `following`/`preceding` are
//!   reduced to sibling-axis queries by path-id decomposition (§5).
//!
//! # Example
//!
//! ```
//! use xpe_core::Estimator;
//! use xpe_synopsis::{Summary, SummaryConfig};
//!
//! let doc = xpe_xml::fixtures::paper_figure1();
//! let summary = Summary::build(&doc, SummaryConfig::default());
//! let est = Estimator::new(&summary);
//!
//! // Paper Example 4.2: //A//C has selectivity 2 — exact after the join.
//! assert_eq!(est.estimate_str("//A//C").unwrap(), 2.0);
//!
//! // Paper Example 5.1: the order query Q̃1 estimates to exactly 1.
//! let s = est.estimate_str("//A[/C[/F]/folls::$B/D]").unwrap();
//! assert!((s - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod editor;
mod engine;
mod estcache;
mod estimator;
mod invariant;
mod join;
mod joincache;
mod metrics;
mod planner;
mod serve;
pub mod server;

pub use editor::{
    drop_subtrees, rebuild, spine_query, subtree_of, trim_below, without_constraints, Rebuilt,
};
pub use engine::{
    EstimationEngine, KernelStats, DEFAULT_ESTIMATE_CACHE_CAPACITY, DEFAULT_JOIN_CACHE_CAPACITY,
};
pub use estcache::{
    estimate_key, EstimateCache, EstimateCacheReader, EstimateKey, EstimateSnapshot,
};
pub use estimator::Estimator;
pub use invariant::{finalize_estimate, safe_div};
pub use join::{
    path_join, path_join_bitmap, path_join_bitmap_budgeted, path_join_bitmap_planned,
    path_join_bitmap_unscreened, path_join_budgeted, path_join_cached, path_join_planned,
    JoinKernel, JoinMemo, JoinPhaseStats, JoinResult, JoinScratch,
};
pub use joincache::{skeleton_key, CacheHit, JoinCache, SkeletonKey, WorkerJoinCache};
pub use metrics::{mean_relative_error, relative_error, ErrorStats};
pub use planner::{PathCardinalities, PlanEdge, PredicateRank, QueryPlan};
pub use serve::{
    AdmissionError, Budget, BudgetExhausted, BudgetState, DegradedReason, EstimateOutcome,
    EstimateStatus, OutcomeTally, QueryLimits,
};
pub use server::{Server, ServerConfig};
