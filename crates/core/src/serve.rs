//! The resilience layer of the serving path: admission control, per-query
//! budgets, and the typed [`EstimateOutcome`] the fallible estimation
//! entry points return.
//!
//! The ladder has four rungs, each catching what the previous one let
//! through:
//!
//! 1. **Admission** ([`QueryLimits`]) — reject oversized queries *before*
//!    any kernel work, with a typed [`AdmissionError`] naming the limit.
//! 2. **Budget** ([`Budget`]/[`BudgetState`]) — a wall-clock deadline and
//!    a fixpoint-edge cap polled cooperatively inside the worklist join
//!    loop; exhaustion degrades the answer instead of hanging the worker.
//! 3. **Isolation** (`xpe_par::par_map_init_chunked_isolated`) — a panic
//!    in one batch item becomes a `Degraded` slot, not a dead batch.
//! 4. **Integrity** (`xpe_synopsis::persist`) — corrupt summaries are
//!    rejected at load with a checksum error, so the rungs above only
//!    ever run against a trusted synopsis.
//!
//! Degraded answers stay inside the estimator's own invariant: the value
//! reported is `finalize_estimate(f(tag), f(tag))` — the target tag's
//! total frequency, the same `[0, f(tag)]` clamp every healthy estimate
//! already passes through — so a degraded estimate is a *valid
//! upper bound*, never garbage.

use std::cell::Cell;
use std::fmt;
use std::time::{Duration, Instant};

use xpe_synopsis::Summary;
use xpe_xpath::Query;

/// Admission-control policy checked before any estimation work runs.
///
/// Every field is an optional inclusive upper bound; `None` means
/// unlimited. The default policy admits everything, preserving the
/// infallible `estimate` behavior for callers that opt out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryLimits {
    /// Maximum number of query nodes (steps).
    pub max_nodes: Option<usize>,
    /// Maximum number of predicate branches — edges beyond the first at
    /// any node, summed over the query (a pure chain has zero).
    pub max_branches: Option<usize>,
    /// Maximum number of order constraints (`folls`/`pres`/`foll`/`prec`).
    pub max_order_constraints: Option<usize>,
    /// Maximum p-histogram fan-out of any single query node's tag — the
    /// number of path ids its candidate list is seeded with, which bounds
    /// the join's per-edge work quadratically.
    pub max_pid_fanout: Option<usize>,
}

impl QueryLimits {
    /// A policy that admits every query (all limits `None`).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Checks `query` against this policy; `Err` names the violated
    /// limit. Admission is a pure function of the query shape and the
    /// summary's histogram sizes — it never runs the join.
    pub fn admit(&self, summary: &Summary, query: &Query) -> Result<(), AdmissionError> {
        if let Some(limit) = self.max_nodes {
            let count = query.len();
            if count > limit {
                return Err(AdmissionError::TooManyNodes { count, limit });
            }
        }
        if let Some(limit) = self.max_branches {
            let count = query
                .node_ids()
                .map(|n| query.node(n).edges.len().saturating_sub(1))
                .sum();
            if count > limit {
                return Err(AdmissionError::TooManyBranches { count, limit });
            }
        }
        if let Some(limit) = self.max_order_constraints {
            let count = query
                .node_ids()
                .map(|n| query.node(n).constraints.len())
                .sum();
            if count > limit {
                return Err(AdmissionError::TooManyOrderConstraints { count, limit });
            }
        }
        if let Some(limit) = self.max_pid_fanout {
            for n in query.node_ids() {
                let tag = &query.node(n).tag;
                let fanout = summary
                    .phistogram(tag)
                    .map_or(0, |h| h.entries_slice().len());
                if fanout > limit {
                    return Err(AdmissionError::PidFanoutTooLarge {
                        tag: tag.clone(),
                        fanout,
                        limit,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Why admission control rejected a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The query has more steps than the policy allows.
    TooManyNodes {
        /// Steps in the query.
        count: usize,
        /// The policy's bound.
        limit: usize,
    },
    /// The query has more predicate branches than the policy allows.
    TooManyBranches {
        /// Branch edges in the query.
        count: usize,
        /// The policy's bound.
        limit: usize,
    },
    /// The query has more order constraints than the policy allows.
    TooManyOrderConstraints {
        /// Order constraints in the query.
        count: usize,
        /// The policy's bound.
        limit: usize,
    },
    /// Some step's tag seeds more path ids than the policy allows.
    PidFanoutTooLarge {
        /// The offending step's tag.
        tag: String,
        /// Path ids the tag's p-histogram would seed.
        fanout: usize,
        /// The policy's bound.
        limit: usize,
    },
}

impl AdmissionError {
    /// Stable machine-readable name of the violated limit, used in wire
    /// status codes (`rejected:<code>`).
    pub fn code(&self) -> &'static str {
        match self {
            AdmissionError::TooManyNodes { .. } => "nodes",
            AdmissionError::TooManyBranches { .. } => "branches",
            AdmissionError::TooManyOrderConstraints { .. } => "order-constraints",
            AdmissionError::PidFanoutTooLarge { .. } => "pid-fanout",
        }
    }
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::TooManyNodes { count, limit } => {
                write!(f, "query has {count} nodes, limit is {limit}")
            }
            AdmissionError::TooManyBranches { count, limit } => {
                write!(f, "query has {count} branches, limit is {limit}")
            }
            AdmissionError::TooManyOrderConstraints { count, limit } => {
                write!(f, "query has {count} order constraints, limit is {limit}")
            }
            AdmissionError::PidFanoutTooLarge { tag, fanout, limit } => {
                write!(
                    f,
                    "tag '{tag}' fans out to {fanout} path ids, limit is {limit}"
                )
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Per-query resource budget for one estimation.
///
/// `None` fields are unlimited; the default budget never exhausts, so
/// budgeted and unbudgeted estimation are bit-identical on queries that
/// stay within any finite budget.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline, measured from the moment estimation starts.
    pub deadline: Option<Duration>,
    /// Cap on worklist fixpoint edge examinations summed over every join
    /// the estimate runs (branch and order formulas run several).
    pub max_join_edges: Option<u64>,
}

impl Budget {
    /// A budget that never exhausts.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Whether any bound is set at all — unbudgeted estimation skips the
    /// per-edge accounting entirely.
    pub fn is_bounded(&self) -> bool {
        self.deadline.is_some() || self.max_join_edges.is_some()
    }
}

/// Which budget dimension ran out first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetExhausted {
    /// The wall-clock deadline passed.
    Deadline,
    /// The fixpoint-edge cap was reached.
    JoinEdges,
}

/// How often the wall clock is polled, in charged edges. Edge charges are
/// nanosecond-cheap counter bumps; `Instant::now` is the expensive part,
/// so it runs on the first charge (making a zero deadline trip
/// deterministically on any query with at least one join edge) and every
/// `POLL_INTERVAL` charges after that.
const POLL_INTERVAL: u64 = 64;

/// Live accounting for one query's [`Budget`] — created when a fallible
/// estimate starts, charged cooperatively by the join kernel, inspected
/// when the estimate finishes.
///
/// Interior mutability via [`Cell`] keeps the join kernel's signature
/// `&BudgetState`: the state never crosses threads (one per estimator,
/// estimators never cross threads), it is only ever *polled* from inside
/// one query's call tree.
#[derive(Debug)]
pub struct BudgetState {
    deadline: Option<Instant>,
    max_join_edges: Option<u64>,
    edges: Cell<u64>,
    exhausted: Cell<Option<BudgetExhausted>>,
}

impl BudgetState {
    /// Starts accounting for `budget`, anchoring the deadline at now.
    pub fn start(budget: &Budget) -> Self {
        BudgetState {
            deadline: budget.deadline.map(|d| Instant::now() + d),
            max_join_edges: budget.max_join_edges,
            edges: Cell::new(0),
            exhausted: Cell::new(None),
        }
    }

    /// Charges one worklist edge examination. Returns `true` while the
    /// budget holds; `false` once exhausted (and forever after — later
    /// joins of the same query stop immediately).
    pub fn charge_edge(&self) -> bool {
        if self.exhausted.get().is_some() {
            return false;
        }
        let n = self.edges.get() + 1;
        self.edges.set(n);
        if let Some(cap) = self.max_join_edges {
            if n > cap {
                self.exhausted.set(Some(BudgetExhausted::JoinEdges));
                return false;
            }
        }
        if let Some(deadline) = self.deadline {
            if (n == 1 || n % POLL_INTERVAL == 0) && Instant::now() >= deadline {
                self.exhausted.set(Some(BudgetExhausted::Deadline));
                return false;
            }
        }
        true
    }

    /// Edges charged so far.
    pub fn edges_charged(&self) -> u64 {
        self.edges.get()
    }

    /// Which dimension exhausted, if any.
    pub fn exhausted(&self) -> Option<BudgetExhausted> {
        self.exhausted.get()
    }
}

/// Why an estimate was served degraded instead of computed exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DegradedReason {
    /// The wall-clock deadline passed mid-estimation.
    Deadline,
    /// The join-edge budget ran out mid-estimation.
    JoinBudget,
    /// The worker panicked on this query; the batch isolated it.
    Panicked {
        /// The panic payload, rendered as text.
        message: String,
    },
}

impl fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradedReason::Deadline => write!(f, "deadline exceeded"),
            DegradedReason::JoinBudget => write!(f, "join-edge budget exhausted"),
            DegradedReason::Panicked { message } => write!(f, "worker panicked: {message}"),
        }
    }
}

/// The status half of an [`EstimateOutcome`].
#[derive(Clone, Debug, PartialEq)]
pub enum EstimateStatus {
    /// The estimate completed normally; the value is exactly what the
    /// infallible `estimate` would return.
    Ok,
    /// Estimation was cut short; the value is the tag-frequency upper
    /// bound `f(tag)` — still inside the `[0, f(tag)]` invariant.
    Degraded {
        /// Why the estimate was cut short.
        reason: DegradedReason,
    },
    /// Admission control refused to run the query; the value is the
    /// tag-frequency upper bound `f(tag)`.
    Rejected {
        /// The violated limit.
        reason: AdmissionError,
    },
}

impl EstimateStatus {
    /// Whether this is the `Ok` status.
    pub fn is_ok(&self) -> bool {
        matches!(self, EstimateStatus::Ok)
    }

    /// Whether this is a `Degraded` status.
    pub fn is_degraded(&self) -> bool {
        matches!(self, EstimateStatus::Degraded { .. })
    }

    /// Whether this is a `Rejected` status.
    pub fn is_rejected(&self) -> bool {
        matches!(self, EstimateStatus::Rejected { .. })
    }

    /// Compact machine-readable status code for the wire protocol:
    /// `"ok"`, `"degraded:deadline"`, `"degraded:join-budget"`,
    /// `"degraded:panicked"`, or `"rejected:<limit>"`. Human-readable
    /// detail stays in the [`Display`](fmt::Display) rendering.
    pub fn code(&self) -> String {
        match self {
            EstimateStatus::Ok => "ok".to_owned(),
            EstimateStatus::Degraded { reason } => match reason {
                DegradedReason::Deadline => "degraded:deadline".to_owned(),
                DegradedReason::JoinBudget => "degraded:join-budget".to_owned(),
                DegradedReason::Panicked { .. } => "degraded:panicked".to_owned(),
            },
            EstimateStatus::Rejected { reason } => format!("rejected:{}", reason.code()),
        }
    }
}

impl fmt::Display for EstimateStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateStatus::Ok => write!(f, "ok"),
            EstimateStatus::Degraded { reason } => write!(f, "degraded: {reason}"),
            EstimateStatus::Rejected { reason } => write!(f, "rejected: {reason}"),
        }
    }
}

/// One fallible estimation's result: always a usable value (inside
/// `[0, f(tag)]`) plus how trustworthy it is.
#[derive(Clone, Debug, PartialEq)]
pub struct EstimateOutcome {
    /// The selectivity estimate — exact for `Ok`, the `f(tag)` upper
    /// bound for `Degraded`/`Rejected`.
    pub value: f64,
    /// How the value was produced.
    pub status: EstimateStatus,
}

/// One set of serving outcome counters — the single source of truth for
/// counter *names* shared by the CLI batch tally (`xpe estimate
/// --deadline-ms` stderr line), the daemon's `stats` verb, and the
/// process-exit summary: all of them print through [`fmt::Display`] /
/// [`write_json`](Self::write_json) so the field names can never drift
/// apart.
///
/// `degraded` counts every degraded outcome; `panics` additionally
/// counts the `degraded:panicked` subset. The transport-level counters
/// (`protocol_errors`, `timeouts`, `overloaded`) are only moved by the
/// network server — a direct batch run leaves them zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutcomeTally {
    /// Estimates that completed normally.
    pub ok: u64,
    /// Estimates served degraded (deadline, join budget, or panic).
    pub degraded: u64,
    /// Queries refused by admission control.
    pub rejected: u64,
    /// Frames that violated the wire protocol (bad JSON, unknown verb,
    /// oversized or truncated line, invalid UTF-8, bad query syntax).
    pub protocol_errors: u64,
    /// Connections that hit a socket read/write timeout.
    pub timeouts: u64,
    /// Requests shed because the worker queue was full.
    pub overloaded: u64,
    /// Worker panics isolated to their own request (a subset of
    /// `degraded`).
    pub panics: u64,
}

impl OutcomeTally {
    /// Every counter as `(name, value)`, in report order — the one list
    /// both renderers below iterate.
    pub fn fields(&self) -> [(&'static str, u64); 7] {
        [
            ("ok", self.ok),
            ("degraded", self.degraded),
            ("rejected", self.rejected),
            ("protocol_errors", self.protocol_errors),
            ("timeouts", self.timeouts),
            ("overloaded", self.overloaded),
            ("panics", self.panics),
        ]
    }

    /// Records one estimate outcome status.
    pub fn record(&mut self, status: &EstimateStatus) {
        match status {
            EstimateStatus::Ok => self.ok += 1,
            EstimateStatus::Degraded { reason } => {
                self.degraded += 1;
                if matches!(reason, DegradedReason::Panicked { .. }) {
                    self.panics += 1;
                }
            }
            EstimateStatus::Rejected { .. } => self.rejected += 1,
        }
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &OutcomeTally) {
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.rejected += other.rejected;
        self.protocol_errors += other.protocol_errors;
        self.timeouts += other.timeouts;
        self.overloaded += other.overloaded;
        self.panics += other.panics;
    }

    /// Requests observed, over every counter except the `panics` subset.
    pub fn total(&self) -> u64 {
        self.ok + self.degraded + self.rejected + self.protocol_errors + self.overloaded
    }

    /// Appends the tally as a JSON object (`{"ok":N,...}`) to `out`.
    pub fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (name, value)) in self.fields().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push('}');
    }
}

impl fmt::Display for OutcomeTally {
    /// Renders `"N ok, N degraded, N rejected"` always, then only the
    /// nonzero transport counters — so the batch CLI line stays as terse
    /// as before while the daemon summary shows everything that moved.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ok, {} degraded, {} rejected",
            self.ok, self.degraded, self.rejected
        )?;
        for (name, value) in &self.fields()[3..] {
            if *value > 0 {
                write!(f, ", {value} {}", name.replace('_', " "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Estimator;
    use xpe_synopsis::{Summary, SummaryConfig};
    use xpe_xpath::parse_query;

    fn summary() -> Summary {
        Summary::build(
            &xpe_xml::fixtures::paper_figure1(),
            SummaryConfig::default(),
        )
    }

    #[test]
    fn unlimited_policy_admits_everything() {
        let s = summary();
        let q = parse_query("//A[/C[/F]/folls::$B/D]").unwrap();
        assert_eq!(QueryLimits::unlimited().admit(&s, &q), Ok(()));
    }

    #[test]
    fn node_limit_boundary() {
        let s = summary();
        let q = parse_query("//A/C/F").unwrap(); // 3 nodes
        let at = QueryLimits {
            max_nodes: Some(3),
            ..QueryLimits::unlimited()
        };
        assert_eq!(at.admit(&s, &q), Ok(()));
        let below = QueryLimits {
            max_nodes: Some(2),
            ..QueryLimits::unlimited()
        };
        assert_eq!(
            below.admit(&s, &q),
            Err(AdmissionError::TooManyNodes { count: 3, limit: 2 })
        );
    }

    #[test]
    fn branch_limit_counts_extra_edges() {
        let s = summary();
        // A has two outgoing edges (C-branch and B) → one branch.
        let q = parse_query("//A[/C/F]/B/D").unwrap();
        let none = QueryLimits {
            max_branches: Some(0),
            ..QueryLimits::unlimited()
        };
        assert_eq!(
            none.admit(&s, &q),
            Err(AdmissionError::TooManyBranches { count: 1, limit: 0 })
        );
        let one = QueryLimits {
            max_branches: Some(1),
            ..QueryLimits::unlimited()
        };
        assert_eq!(one.admit(&s, &q), Ok(()));
        // A pure chain has zero branches even under the zero limit.
        let chain = parse_query("//A/C/F").unwrap();
        assert_eq!(none.admit(&s, &chain), Ok(()));
    }

    #[test]
    fn order_constraint_limit() {
        let s = summary();
        let q = parse_query("//A[/C[/F]/folls::$B/D]").unwrap();
        let zero = QueryLimits {
            max_order_constraints: Some(0),
            ..QueryLimits::unlimited()
        };
        assert_eq!(
            zero.admit(&s, &q),
            Err(AdmissionError::TooManyOrderConstraints { count: 1, limit: 0 })
        );
        let one = QueryLimits {
            max_order_constraints: Some(1),
            ..QueryLimits::unlimited()
        };
        assert_eq!(one.admit(&s, &q), Ok(()));
    }

    #[test]
    fn pid_fanout_limit_names_the_tag() {
        let s = summary();
        let q = parse_query("//A//C").unwrap();
        let a_fanout = s.phistogram("A").unwrap().entries_slice().len();
        assert!(a_fanout >= 1);
        let tight = QueryLimits {
            max_pid_fanout: Some(0),
            ..QueryLimits::unlimited()
        };
        match tight.admit(&s, &q) {
            Err(AdmissionError::PidFanoutTooLarge { tag, fanout, limit }) => {
                assert_eq!(tag, "A");
                assert_eq!(fanout, a_fanout);
                assert_eq!(limit, 0);
            }
            other => panic!("expected fan-out rejection, got {other:?}"),
        }
        // Unknown tags seed zero pids and always pass the fan-out gate.
        let unknown = parse_query("//Zebra").unwrap();
        assert_eq!(tight.admit(&s, &unknown), Ok(()));
    }

    #[test]
    fn budget_state_edge_cap_is_exact() {
        let b = Budget {
            deadline: None,
            max_join_edges: Some(3),
        };
        let state = BudgetState::start(&b);
        assert!(state.charge_edge());
        assert!(state.charge_edge());
        assert!(state.charge_edge());
        assert_eq!(state.exhausted(), None);
        assert!(!state.charge_edge());
        assert_eq!(state.exhausted(), Some(BudgetExhausted::JoinEdges));
        // Exhaustion is sticky.
        assert!(!state.charge_edge());
        assert_eq!(state.edges_charged(), 4);
    }

    #[test]
    fn zero_deadline_trips_on_first_charge() {
        let b = Budget {
            deadline: Some(Duration::ZERO),
            max_join_edges: None,
        };
        let state = BudgetState::start(&b);
        assert!(!state.charge_edge());
        assert_eq!(state.exhausted(), Some(BudgetExhausted::Deadline));
    }

    #[test]
    fn generous_budget_never_exhausts_here() {
        let b = Budget {
            deadline: Some(Duration::from_secs(3600)),
            max_join_edges: Some(u64::MAX),
        };
        let state = BudgetState::start(&b);
        for _ in 0..10_000 {
            assert!(state.charge_edge());
        }
        assert_eq!(state.exhausted(), None);
    }

    #[test]
    fn unbounded_budget_reports_unbounded() {
        assert!(!Budget::unlimited().is_bounded());
        assert!(Budget {
            deadline: Some(Duration::from_millis(5)),
            max_join_edges: None
        }
        .is_bounded());
    }

    #[test]
    fn try_estimate_ok_is_bit_identical_to_estimate() {
        let s = summary();
        let est = Estimator::new(&s);
        let generous = Budget {
            deadline: Some(Duration::from_secs(3600)),
            max_join_edges: Some(u64::MAX),
        };
        for q in [
            "//A//C",
            "//A[/C/F]/B/D",
            "//C[/$E]/F",
            "//A[/C[/F]/folls::$B/D]",
            "//A[/C/foll::$B]",
        ] {
            let query = parse_query(q).unwrap();
            let plain = est.estimate(&query);
            for budget in [Budget::unlimited(), generous] {
                let out = est.try_estimate(&query, &QueryLimits::unlimited(), &budget);
                assert_eq!(out.status, EstimateStatus::Ok, "{q}");
                assert_eq!(out.value.to_bits(), plain.to_bits(), "{q}");
            }
        }
    }

    #[test]
    fn rejected_outcome_reports_tag_bound() {
        let s = summary();
        let est = Estimator::new(&s);
        let query = parse_query("//A//C").unwrap();
        let limits = QueryLimits {
            max_nodes: Some(1),
            ..QueryLimits::unlimited()
        };
        let out = est.try_estimate(&query, &limits, &Budget::unlimited());
        assert!(out.status.is_rejected());
        // The value is f(C) — the same cap every healthy estimate obeys.
        assert_eq!(out.value, s.tag_total("C"));
    }

    #[test]
    fn exhausted_budget_degrades_to_tag_bound() {
        let s = summary();
        let est = Estimator::new(&s);
        let query = parse_query("//A[/C/F]/B/D").unwrap();
        let starved = Budget {
            deadline: None,
            max_join_edges: Some(0),
        };
        let out = est.try_estimate(&query, &QueryLimits::unlimited(), &starved);
        assert_eq!(
            out.status,
            EstimateStatus::Degraded {
                reason: DegradedReason::JoinBudget
            }
        );
        let cap = s.tag_total("D");
        assert!(out.value >= 0.0 && out.value <= cap);
        assert_eq!(out.value, cap);
        // The estimator fully recovers: the next unbudgeted call is exact.
        let healthy = est.try_estimate(&query, &QueryLimits::unlimited(), &Budget::unlimited());
        assert_eq!(healthy.status, EstimateStatus::Ok);
        assert_eq!(healthy.value.to_bits(), est.estimate(&query).to_bits());
    }

    #[test]
    fn zero_deadline_degrades_with_deadline_reason() {
        let s = summary();
        let est = Estimator::new(&s);
        let query = parse_query("//A//C").unwrap();
        let b = Budget {
            deadline: Some(Duration::ZERO),
            max_join_edges: None,
        };
        let out = est.try_estimate(&query, &QueryLimits::unlimited(), &b);
        assert_eq!(
            out.status,
            EstimateStatus::Degraded {
                reason: DegradedReason::Deadline
            }
        );
        assert_eq!(out.value, s.tag_total("C"));
    }

    #[test]
    fn status_displays_are_distinct() {
        let ok = EstimateStatus::Ok.to_string();
        let deg = EstimateStatus::Degraded {
            reason: DegradedReason::Deadline,
        }
        .to_string();
        let rej = EstimateStatus::Rejected {
            reason: AdmissionError::TooManyNodes { count: 9, limit: 4 },
        }
        .to_string();
        assert_eq!(ok, "ok");
        assert!(deg.contains("deadline"));
        assert!(rej.contains("9 nodes"));
        assert_ne!(deg, rej);
    }

    #[test]
    fn status_codes_are_compact_and_distinct() {
        let codes = [
            EstimateStatus::Ok.code(),
            EstimateStatus::Degraded {
                reason: DegradedReason::Deadline,
            }
            .code(),
            EstimateStatus::Degraded {
                reason: DegradedReason::JoinBudget,
            }
            .code(),
            EstimateStatus::Degraded {
                reason: DegradedReason::Panicked {
                    message: "boom".into(),
                },
            }
            .code(),
            EstimateStatus::Rejected {
                reason: AdmissionError::TooManyNodes { count: 9, limit: 4 },
            }
            .code(),
            EstimateStatus::Rejected {
                reason: AdmissionError::PidFanoutTooLarge {
                    tag: "A".into(),
                    fanout: 8,
                    limit: 2,
                },
            }
            .code(),
        ];
        assert_eq!(codes[0], "ok");
        assert_eq!(codes[1], "degraded:deadline");
        assert_eq!(codes[4], "rejected:nodes");
        assert_eq!(codes[5], "rejected:pid-fanout");
        for (i, a) in codes.iter().enumerate() {
            // Codes never carry spaces or quotes — safe to embed raw in
            // the hand-rolled JSON writer.
            assert!(!a.contains([' ', '"']), "{a}");
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn outcome_tally_records_merges_and_renders() {
        let mut t = OutcomeTally::default();
        t.record(&EstimateStatus::Ok);
        t.record(&EstimateStatus::Ok);
        t.record(&EstimateStatus::Degraded {
            reason: DegradedReason::Panicked {
                message: "boom".into(),
            },
        });
        t.record(&EstimateStatus::Rejected {
            reason: AdmissionError::TooManyNodes { count: 9, limit: 4 },
        });
        assert_eq!((t.ok, t.degraded, t.rejected, t.panics), (2, 1, 1, 1));
        let mut sum = OutcomeTally {
            protocol_errors: 3,
            ..OutcomeTally::default()
        };
        sum.merge(&t);
        assert_eq!(sum.ok, 2);
        assert_eq!(sum.protocol_errors, 3);
        assert_eq!(sum.total(), 7);
        // The terse rendering hides zero transport counters, shows
        // nonzero ones.
        assert_eq!(t.to_string(), "2 ok, 1 degraded, 1 rejected, 1 panics");
        assert_eq!(
            sum.to_string(),
            "2 ok, 1 degraded, 1 rejected, 3 protocol errors, 1 panics"
        );
        let mut json = String::new();
        sum.write_json(&mut json);
        assert_eq!(
            json,
            "{\"ok\":2,\"degraded\":1,\"rejected\":1,\"protocol_errors\":3,\
             \"timeouts\":0,\"overloaded\":0,\"panics\":1}"
        );
    }
}
