//! Query surgery for the estimation formulas.
//!
//! §4 and §5 of the paper derive auxiliary queries from the input: the
//! order-free counterpart `Q`, the spine query `Q' = q1/q2`, and the
//! trimmed query `Q̃' = q1[/ni1/folls::q3]`. This module rebuilds a
//! [`Query`] from a kept subset of nodes, remapping ids and dropping order
//! constraints (every derived query the formulas evaluate is order-free;
//! order information enters only through o-histogram lookups).

use xpe_xpath::{Query, QueryEdge, QueryNode, QueryNodeId};

/// A derived query plus the id mapping from the original.
#[derive(Clone, Debug)]
pub struct Rebuilt {
    /// The derived (always constraint-free) query.
    pub query: Query,
    /// `map[old.index()]` is the node's id in the derived query, `None` if
    /// it was dropped.
    pub map: Vec<Option<QueryNodeId>>,
}

impl Rebuilt {
    /// The new id of `old`.
    ///
    /// # Panics
    ///
    /// Panics if `old` was dropped by the rebuild.
    pub fn remap(&self, old: QueryNodeId) -> QueryNodeId {
        self.map[old.index()].expect("node kept by rebuild")
    }
}

/// Rebuilds `q` keeping exactly the nodes with `keep[id.index()]`, with
/// `target` (which must be kept) as the new target. Order constraints are
/// dropped. A kept node's parent must also be kept — the formulas only ever
/// remove whole subtrees.
pub fn rebuild(q: &Query, keep: &[bool], target: QueryNodeId) -> Rebuilt {
    debug_assert!(keep[target.index()], "target must survive");
    let mut map: Vec<Option<QueryNodeId>> = vec![None; q.len()];
    let mut next = 0u32;
    for old in q.node_ids() {
        if keep[old.index()] {
            if let Some((p, _)) = q.parent_of(old) {
                debug_assert!(keep[p.index()], "kept node's parent must be kept");
            }
            map[old.index()] = Some(QueryNodeId::from_index(next as usize));
            next += 1;
        }
    }
    let mut nodes: Vec<QueryNode> = Vec::with_capacity(next as usize);
    for old in q.node_ids() {
        if !keep[old.index()] {
            continue;
        }
        let src = q.node(old);
        let edges: Vec<QueryEdge> = src
            .edges
            .iter()
            .filter(|e| keep[e.to.index()])
            .map(|e| QueryEdge {
                axis: e.axis,
                to: map[e.to.index()].expect("kept child mapped"),
            })
            .collect();
        nodes.push(QueryNode {
            tag: src.tag.clone(),
            edges,
            constraints: Vec::new(),
        });
    }
    let query = Query::new(
        nodes,
        q.root_axis(),
        map[target.index()].expect("target mapped"),
    )
    .expect("subset of a valid query is valid");
    Rebuilt { query, map }
}

/// The order-free counterpart `Q` of `Q̃` (paper §5): same structure, no
/// constraints, same target.
pub fn without_constraints(q: &Query) -> Rebuilt {
    rebuild(q, &vec![true; q.len()], q.target())
}

/// Marks `head` and its whole query subtree.
pub fn subtree_of(q: &Query, head: QueryNodeId) -> Vec<bool> {
    let mut in_sub = vec![false; q.len()];
    let mut stack = vec![head];
    while let Some(n) = stack.pop() {
        if std::mem::replace(&mut in_sub[n.index()], true) {
            continue;
        }
        for e in &q.node(n).edges {
            stack.push(e.to);
        }
    }
    in_sub
}

/// The spine query of target `n` (generalized `Q' = q1/q2`): keeps the path
/// from the query root to `n` plus `n`'s own subtree; drops every other
/// branch.
pub fn spine_query(q: &Query, n: QueryNodeId) -> Rebuilt {
    let mut keep = subtree_of(q, n);
    for a in q.path_to(n) {
        keep[a.index()] = true;
    }
    rebuild(q, &keep, n)
}

/// Removes the descendants of `head` (keeping `head` itself) — the paper's
/// "deleting the branch part q2 except for its first node ni1".
pub fn trim_below(q: &Query, head: QueryNodeId, target: QueryNodeId) -> Rebuilt {
    let mut keep = vec![true; q.len()];
    let sub = subtree_of(q, head);
    for id in q.node_ids() {
        if sub[id.index()] && id != head {
            keep[id.index()] = false;
        }
    }
    rebuild(q, &keep, target)
}

/// Removes the subtrees rooted at each of `heads` entirely.
pub fn drop_subtrees(q: &Query, heads: &[QueryNodeId], target: QueryNodeId) -> Rebuilt {
    let mut keep = vec![true; q.len()];
    for &h in heads {
        let sub = subtree_of(q, h);
        for id in q.node_ids() {
            if sub[id.index()] {
                keep[id.index()] = false;
            }
        }
    }
    rebuild(q, &keep, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_xpath::parse_query;

    #[test]
    fn without_constraints_preserves_structure() {
        let q = parse_query("//A[/C/folls::$B/D]").unwrap();
        let r = without_constraints(&q);
        assert_eq!(r.query.len(), q.len());
        assert!(!r.query.has_order_constraints());
        assert_eq!(r.query.node(r.query.target()).tag, "B");
    }

    #[test]
    fn spine_query_drops_other_branches() {
        // Q2 = //C[/E]/F with target E: the spine is C/E.
        let q = parse_query("//C[/$E]/F").unwrap();
        let r = spine_query(&q, q.target());
        assert_eq!(r.query.len(), 2);
        assert_eq!(r.query.node(r.query.root()).tag, "C");
        assert_eq!(r.query.node(r.query.target()).tag, "E");
        // E is the rendered default target, so Display omits the marker.
        assert_eq!(r.query.to_string(), "//C/E");
    }

    #[test]
    fn spine_keeps_targets_own_subtree() {
        // //A[/B/X]/C/D with target B: the spine keeps A, B and B's child X.
        let q = parse_query("//A[/$B/X]/C/D").unwrap();
        let r = spine_query(&q, q.target());
        assert_eq!(r.query.len(), 3);
        let tags: Vec<&str> = r
            .query
            .node_ids()
            .map(|n| r.query.node(n).tag.as_str())
            .collect();
        assert!(tags.contains(&"X"));
        assert!(!tags.contains(&"C"));
    }

    #[test]
    fn trim_below_keeps_head() {
        // Trim C's subtree in //A[/C/F]/B: F disappears, C stays.
        let q = parse_query("//A[/C/F]/B").unwrap();
        let c = q.node_ids().find(|&n| q.node(n).tag == "C").unwrap();
        let r = trim_below(&q, c, q.target());
        assert_eq!(r.query.len(), 3);
        let c_new = r.remap(c);
        assert!(r.query.node(c_new).edges.is_empty());
    }

    #[test]
    fn drop_subtrees_removes_whole_branch() {
        let q = parse_query("//A[/C/F]/B/D").unwrap();
        let c = q.node_ids().find(|&n| q.node(n).tag == "C").unwrap();
        let r = drop_subtrees(&q, &[c], q.target());
        assert_eq!(r.query.len(), 3); // A, B, D
        assert_eq!(r.query.to_string(), "//A/B/D");
        assert!(r.map[c.index()].is_none());
    }

    #[test]
    fn remap_panics_on_dropped_node() {
        let q = parse_query("//A[/C]/B").unwrap();
        let c = q.node_ids().find(|&n| q.node(n).tag == "C").unwrap();
        let r = drop_subtrees(&q, &[c], q.target());
        let result = std::panic::catch_unwind(|| r.remap(c));
        assert!(result.is_err());
    }
}
