//! The path id join (paper §4, Figure 3).
//!
//! Every query node starts with the full `(pid, frequency)` list of its tag
//! from the p-histogram; path ids that cannot satisfy the containment and
//! tag-relationship test along some query edge are removed, iterating to a
//! fixpoint. The surviving frequencies are the `f_Q(n)` values the
//! estimation formulas consume.

use std::sync::Arc;

use xpe_pathid::{axis_compatible_masked, relation_mask, PathIdBits, Pid, RelationMaskCache};
use xpe_synopsis::Summary;
use xpe_xpath::{Axis, Query, QueryNodeId};

/// Per-query-node surviving `(pid, estimated frequency)` lists.
#[derive(Clone, Debug)]
pub struct JoinResult {
    /// `lists[q.index()]`: surviving pids of each query node.
    pub lists: Vec<Vec<(Pid, f64)>>,
}

/// Reusable allocations for [`path_join_cached`].
///
/// A join allocates one `(pid, frequency)` vector per query node; across a
/// workload that is thousands of short-lived allocations doing identical
/// work. The scratch keeps the vectors alive between joins: callers pass
/// it to [`path_join_cached`] and hand finished [`JoinResult`]s back via
/// [`recycle`](Self::recycle), after which the capacity is reused.
#[derive(Debug, Default)]
pub struct JoinScratch {
    pool: Vec<Vec<(Pid, f64)>>,
}

impl JoinScratch {
    /// Creates an empty scratch pool.
    pub fn new() -> Self {
        Self::default()
    }

    fn take(&mut self) -> Vec<(Pid, f64)> {
        self.pool.pop().unwrap_or_default()
    }

    /// Returns a finished join's vectors to the pool.
    pub fn recycle(&mut self, join: JoinResult) {
        self.pool.extend(join.lists.into_iter().map(|mut v| {
            v.clear();
            v
        }));
    }

    /// Number of pooled vectors (introspection for tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

impl JoinResult {
    /// `f_Q(n)`: the summed frequency of `n`'s surviving path ids.
    pub fn frequency(&self, n: QueryNodeId) -> f64 {
        self.lists[n.index()].iter().map(|&(_, f)| f).sum()
    }

    /// The surviving pids of `n`.
    pub fn pids(&self, n: QueryNodeId) -> impl Iterator<Item = Pid> + '_ {
        self.lists[n.index()].iter().map(|&(p, _)| p)
    }
}

/// Runs the path join of `query` against `summary`.
///
/// Order constraints are ignored here — the join prunes on structural
/// (child/descendant) edges only; §5's formulas layer order corrections on
/// top of the joined frequencies.
pub fn path_join(summary: &Summary, query: &Query) -> JoinResult {
    path_join_cached(summary, query, None, None)
}

/// [`path_join`] with optional memoized relation masks and pooled list
/// allocations — the batch engine's fast path. Passing `None` for both is
/// exactly `path_join`; the caches never change the result, only the work
/// done to produce it.
pub fn path_join_cached(
    summary: &Summary,
    query: &Query,
    masks: Option<&RelationMaskCache>,
    mut scratch: Option<&mut JoinScratch>,
) -> JoinResult {
    let mut lists: Vec<Vec<(Pid, f64)>> = query
        .node_ids()
        .map(|q| {
            let mut list = match scratch.as_deref_mut() {
                Some(s) => s.take(),
                None => Vec::new(),
            };
            if let Some(h) = summary.phistogram(&query.node(q).tag) {
                list.extend_from_slice(h.entries_slice());
            }
            list
        })
        .collect();

    // A `/`-rooted query pins its first step to the document root: keep
    // only ids whose paths carry the step's tag at depth 0. (Elements other
    // than the root can never sit at depth 0, so this only over-counts on
    // self-recursive roots — an estimator-grade approximation.)
    if query.root_axis() == Axis::Child {
        let root_node = query.root();
        if let Some(tag) = summary.tags.get(&query.node(root_node).tag) {
            lists[root_node.index()].retain(|&(pid, _)| {
                summary
                    .pids
                    .bits(pid)
                    .ones()
                    .any(|enc| summary.encoding.path(enc).first() == Some(&tag))
            });
        } else {
            lists[root_node.index()].clear();
        }
    }

    // Resolve each structural edge's tags and relation mask once — one
    // mask serves every pid-pair test of the edge across every fixpoint
    // pass. Unknown tags kill both endpoint lists outright (nothing in a
    // shrinking fixpoint can resurrect them), so such edges drop out here.
    let mut edges: Vec<(QueryNodeId, QueryNodeId, Arc<PathIdBits>)> = Vec::new();
    for u in query.node_ids() {
        for e in &query.node(u).edges {
            let v = e.to;
            let child = match e.axis {
                Axis::Child => true,
                Axis::Descendant => false,
                _ => unreachable!("structural edges only"),
            };
            let (Some(tag_u), Some(tag_v)) = (
                summary.tags.get(&query.node(u).tag),
                summary.tags.get(&query.node(v).tag),
            ) else {
                lists[u.index()].clear();
                lists[v.index()].clear();
                continue;
            };
            let mask = match masks {
                Some(cache) => cache.get(&summary.encoding, tag_u, tag_v, child),
                None => Arc::new(relation_mask(&summary.encoding, tag_u, tag_v, child)),
            };
            edges.push((u, v, mask));
        }
    }

    // Nested-loop containment tests per edge, iterated to a fixpoint. The
    // loop terminates because every pass can only shrink the lists.
    loop {
        let mut changed = false;
        for (u, v, mask) in &edges {
            let (u_list, v_list) = two_lists(&mut lists, u.index(), v.index());
            let compatible = |pu: Pid, pv: Pid| axis_compatible_masked(&summary.pids, pu, pv, mask);
            let before_u = u_list.len();
            u_list.retain(|&(pu, _)| v_list.iter().any(|&(pv, _)| compatible(pu, pv)));
            let before_v = v_list.len();
            v_list.retain(|&(pv, _)| u_list.iter().any(|&(pu, _)| compatible(pu, pv)));
            changed |= u_list.len() != before_u || v_list.len() != before_v;
        }
        if !changed {
            break;
        }
    }
    JoinResult { lists }
}

fn two_lists<T>(v: &mut [Vec<T>], a: usize, b: usize) -> (&mut Vec<T>, &mut Vec<T>) {
    assert_ne!(a, b, "query edges never self-loop");
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_synopsis::SummaryConfig;
    use xpe_xpath::parse_query;

    fn summary() -> Summary {
        Summary::build(
            &xpe_xml::fixtures::paper_figure1(),
            SummaryConfig::default(),
        )
    }

    /// The surviving pid bit strings of a query node, sorted.
    fn pids_of(s: &Summary, j: &JoinResult, q: &Query, tag: &str) -> Vec<String> {
        let node = q
            .node_ids()
            .find(|&n| q.node(n).tag == tag)
            .expect("tag in query");
        let mut v: Vec<String> = j.pids(node).map(|p| s.pids.bits(p).to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn paper_example_4_1_join() {
        // Q1 = //A[/C/F]/B/D (Figure 3): after the join A = {p7},
        // C = {p3}, F = {p1}, B = {p5}, D = {p5}.
        let s = summary();
        let q = parse_query("//A[/C/F]/B/D").unwrap();
        let j = path_join(&s, &q);
        assert_eq!(pids_of(&s, &j, &q, "A"), vec!["1011"]); // p7
        assert_eq!(pids_of(&s, &j, &q, "C"), vec!["0011"]); // p3
        assert_eq!(pids_of(&s, &j, &q, "F"), vec!["0001"]); // p1
        assert_eq!(pids_of(&s, &j, &q, "B"), vec!["1000"]); // p5
        assert_eq!(pids_of(&s, &j, &q, "D"), vec!["1000"]); // p5
                                                            // Frequencies: f(A)=1, f(B)=3, f(D)=4 (Figure 3(b)).
        let a = q.root();
        assert_eq!(j.frequency(a), 1.0);
    }

    #[test]
    fn paper_example_4_2_simple_query() {
        // //A//C: A keeps {p6, p7}, C keeps {p2, p3}; both selectivities 2.
        let s = summary();
        let q = parse_query("//A//C").unwrap();
        let j = path_join(&s, &q);
        assert_eq!(pids_of(&s, &j, &q, "A"), vec!["1010", "1011"]); // p6, p7
        assert_eq!(pids_of(&s, &j, &q, "C"), vec!["0010", "0011"]); // p2, p3
        assert_eq!(j.frequency(q.root()), 2.0);
        assert_eq!(j.frequency(q.target()), 2.0);
    }

    #[test]
    fn paper_example_4_3_branch_overestimate() {
        // Q2 = //C[/E]/F: E keeps {(p2, 2)} — the join's known
        // over-estimate the branch formula later corrects to 1.
        let s = summary();
        let q = parse_query("//C[/$E]/F").unwrap();
        let j = path_join(&s, &q);
        assert_eq!(pids_of(&s, &j, &q, "E"), vec!["0010"]);
        assert_eq!(j.frequency(q.target()), 2.0);
        // C itself is exact: {p3} with frequency 1.
        assert_eq!(j.frequency(q.root()), 1.0);
    }

    #[test]
    fn unknown_tag_empties_the_query() {
        let s = summary();
        let q = parse_query("//A/Zebra").unwrap();
        let j = path_join(&s, &q);
        assert_eq!(j.frequency(q.root()), 0.0);
        assert_eq!(j.frequency(q.target()), 0.0);
    }

    #[test]
    fn incompatible_axis_prunes_everything() {
        // D is never a parent of A.
        let s = summary();
        let q = parse_query("//D/A").unwrap();
        let j = path_join(&s, &q);
        assert_eq!(j.frequency(q.target()), 0.0);
    }

    #[test]
    fn child_vs_descendant_pruning_differs() {
        // //Root/E: E is never a child of Root → empty.
        let s = summary();
        let child = parse_query("/Root/E").unwrap();
        assert_eq!(path_join(&s, &child).frequency(child.target()), 0.0);
        // //Root//E: all three E's survive.
        let desc = parse_query("/Root//E").unwrap();
        assert_eq!(path_join(&s, &desc).frequency(desc.target()), 3.0);
    }

    #[test]
    fn join_ignores_order_constraints() {
        let s = summary();
        let plain = parse_query("//A[/C]/B").unwrap();
        let ordered = parse_query("//A[/C/folls::$B]").unwrap();
        let jp = path_join(&s, &plain);
        let jo = path_join(&s, &ordered);
        // Same structural pruning on B regardless of the constraint.
        assert_eq!(
            pids_of(&s, &jp, &plain, "B"),
            pids_of(&s, &jo, &ordered, "B")
        );
    }
}
