//! The path id join (paper §4, Figure 3).
//!
//! Every query node starts with the full `(pid, frequency)` list of its tag
//! from the p-histogram; path ids that cannot satisfy the containment and
//! tag-relationship test along some query edge are removed, iterating to a
//! fixpoint. The surviving frequencies are the `f_Q(n)` values the
//! estimation formulas consume.
//!
//! Three kernels produce that fixpoint (selected by [`JoinKernel`]):
//!
//! * [`path_join`] — the reference kernel: per-edge relation masks and an
//!   iterate-all-edges-until-stable loop, exactly the paper's Figure 3.
//!   No caches, no indexes; the proptests pin every optimization below
//!   against it bit for bit.
//! * [`path_join_cached`] — the indexed kernel: edges resolve to
//!   precomputed [`ContainmentAdjacency`] rows (containment +
//!   relation-mask test folded into one sorted pid list per endpoint), the
//!   root-pinning check reads the summary's precomputed depth-0 pid sets,
//!   and a **worklist fixpoint** re-examines only edges whose endpoint
//!   lists shrank in the previous step instead of sweeping every edge per
//!   pass.
//! * [`path_join_bitmap`] — the bit-parallel kernel the estimator runs by
//!   default: each node's surviving set is a pid-index *bitmap*, each
//!   edge step is a word-parallel semi-join over the adjacency's bitmap
//!   rows screened by its candidate bitmap, and the final `(pid, f)`
//!   lists are rebuilt from the bitmaps in histogram order. Same worklist
//!   schedule as the indexed kernel, so serve budgets are charged the
//!   same edge counts.
//!
//! The fixpoint both kernels compute is the *greatest* set of surviving
//! pids closed under every edge constraint. Each pruning step is monotone
//! (it only removes pids, and removing pids can only enable more
//! removals), so the fixpoint is unique regardless of the order edges are
//! examined in — which is what makes the worklist schedule, the adjacency
//! rows, and the naive scan interchangeable bit for bit: `retain` keeps
//! histogram order, so identical surviving sets sum to identical `f64`s.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use xpe_pathid::{
    axis_compatible_masked, relation_mask, words, ContainmentAdjacency, JoinIndexCache,
    JoinIndexSnapshot, PathIdBits, Pid, RelationMaskCache, RelationMaskSnapshot,
};
use xpe_synopsis::Summary;
use xpe_xml::TagId;
use xpe_xpath::{Axis, Query, QueryNodeId};

use crate::planner::QueryPlan;
use crate::serve::BudgetState;

/// Which fixpoint kernel an [`Estimator`](crate::Estimator) runs. All
/// three compute the same greatest fixpoint bit for bit (pinned by the
/// diff-harness proptests); they differ only in speed and in how they
/// cooperate with serve budgets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum JoinKernel {
    /// The reference Figure-3 kernel: fresh masks, nested-loop
    /// containment, sweep-all-edges fixpoint. No caches and no budget
    /// cooperation — kept for oracle comparisons and debugging.
    Naive,
    /// Adjacency-row semi-join over `(pid, frequency)` lists with a
    /// worklist schedule ([`path_join_cached`]).
    Indexed,
    /// Word-parallel semi-join over pid-index bitmaps with the same
    /// worklist schedule ([`path_join_bitmap`]) — charges budgets the
    /// exact same edge counts as `Indexed`.
    #[default]
    Bitmap,
}

impl JoinKernel {
    /// Every kernel, in `naive < indexed < bitmap` order.
    pub const ALL: [JoinKernel; 3] = [JoinKernel::Naive, JoinKernel::Indexed, JoinKernel::Bitmap];

    /// Parses a CLI-style kernel name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "naive" => Some(JoinKernel::Naive),
            "indexed" => Some(JoinKernel::Indexed),
            "bitmap" => Some(JoinKernel::Bitmap),
            _ => None,
        }
    }

    /// The CLI-style kernel name.
    pub fn name(self) -> &'static str {
        match self {
            JoinKernel::Naive => "naive",
            JoinKernel::Indexed => "indexed",
            JoinKernel::Bitmap => "bitmap",
        }
    }
}

/// Cumulative per-phase wall-clock breakdown of the join kernels, in
/// nanoseconds. Collected only when a [`JoinScratch`] has timing enabled
/// (an `Instant::now` pair per phase is measurable on µs-scale joins, so
/// it is off by default); the bench harness turns it on to report where
/// join time goes. Adjacency build time is *not* in here — builds are
/// memoized in [`JoinIndexCache`] and timed by its own counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinPhaseStats {
    /// Building the prepared [`QueryPlan`] — tag-name resolution and edge
    /// flattening. Lapped by the estimator (plans are built outside the
    /// kernels, and skipped entirely on a plan-cache hit).
    pub plan_ns: u64,
    /// Seeding candidate lists/bitmaps, root pinning, and edge
    /// resolution (mask/adjacency lookups).
    pub screen_ns: u64,
    /// The worklist fixpoint itself.
    pub fixpoint_ns: u64,
    /// Rebuilding `(pid, frequency)` lists from final bitmaps (bitmap
    /// kernel only; the list kernels' lists are already final).
    pub finalize_ns: u64,
}

/// Starts-on-demand phase stopwatch: `None` when timing is disabled, so
/// the kernels pay nothing in the common case.
struct PhaseTimer(Option<Instant>);

impl PhaseTimer {
    fn start(enabled: bool) -> Self {
        PhaseTimer(enabled.then(Instant::now))
    }

    /// Adds the time since the last lap to `slot` and restarts.
    fn lap(&mut self, slot: &mut u64) {
        if let Some(t) = self.0 {
            let now = Instant::now();
            *slot += now.duration_since(t).as_nanos() as u64;
            self.0 = Some(now);
        }
    }
}

/// Per-query-node surviving `(pid, estimated frequency)` lists.
#[derive(Clone, Debug)]
pub struct JoinResult {
    /// `lists[q.index()]`: surviving pids of each query node.
    pub lists: Vec<Vec<(Pid, f64)>>,
}

/// Reusable allocations for the non-naive join kernels.
///
/// A join allocates one `(pid, frequency)` vector per query node plus a
/// handful of fixpoint bookkeeping structures; across a workload that is
/// thousands of short-lived allocations doing identical work. The scratch
/// keeps everything alive between joins: callers pass it to the kernels
/// and hand finished [`JoinResult`]s back via [`recycle`](Self::recycle),
/// after which the capacity is reused. Besides the list/bitmap pools it
/// carries the indexed kernel's pid stamp array (an epoch-versioned
/// membership mark, so the semi-join never clears between edges) and the
/// hoisted worklist state — incident lists, queued flags, the worklist
/// deque, per-node bitmap containers and population counts, and the
/// resolved-edge vectors — so a warm join performs **zero allocations**.
#[derive(Debug, Default)]
pub struct JoinScratch {
    pool: Vec<Vec<(Pid, f64)>>,
    /// Pooled outer `lists` vectors, so rebuilding a [`JoinResult`] does
    /// not allocate its spine either.
    outer_pool: Vec<Vec<Vec<(Pid, f64)>>>,
    stamp: Vec<u32>,
    epoch: u32,
    /// Pooled pid-index bitmaps for the bitmap kernel's per-node sets.
    bit_pool: Vec<Vec<u64>>,
    /// The bitmap kernel's union accumulator, reused across edges.
    acc: Vec<u64>,
    /// Hoisted worklist state: per-node incident edge indices.
    incident: Vec<Vec<usize>>,
    /// Hoisted worklist state: per-edge queued flags.
    queued: Vec<bool>,
    /// Hoisted worklist state: the edge worklist itself.
    worklist: VecDeque<usize>,
    /// Hoisted bitmap-kernel state: per-node population counts.
    counts: Vec<usize>,
    /// Hoisted bitmap-kernel state: the per-node bitmap container (the
    /// bitmaps inside recycle through `bit_pool`).
    node_bits: Vec<Vec<u64>>,
    /// Hoisted bitmap-kernel state: the resolved edge vector.
    bit_edges: Vec<BitEdge>,
    /// Hoisted indexed-kernel state: the resolved edge vector.
    resolved: Vec<ResolvedEdge>,
    /// When set, the kernels accumulate a per-phase wall-clock breakdown
    /// into `phases` (see [`JoinPhaseStats`]).
    timing: bool,
    phases: JoinPhaseStats,
}

impl JoinScratch {
    /// Creates an empty scratch pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables per-phase timing (off by default).
    pub fn set_timing(&mut self, on: bool) {
        self.timing = on;
    }

    /// Whether per-phase timing is enabled.
    pub(crate) fn timing_enabled(&self) -> bool {
        self.timing
    }

    /// Adds plan-construction time to the phase breakdown (the estimator
    /// laps this — plans are built outside the kernels).
    pub(crate) fn add_plan_ns(&mut self, ns: u64) {
        self.phases.plan_ns += ns;
    }

    /// The accumulated per-phase breakdown (all zero unless timing was
    /// enabled).
    pub fn phase_stats(&self) -> JoinPhaseStats {
        self.phases
    }

    /// Resets the per-phase breakdown to zero.
    pub fn reset_phase_stats(&mut self) {
        self.phases = JoinPhaseStats::default();
    }

    fn take(&mut self) -> Vec<(Pid, f64)> {
        self.pool.pop().unwrap_or_default()
    }

    /// A pooled (empty) outer `lists` vector.
    fn take_outer(&mut self) -> Vec<Vec<(Pid, f64)>> {
        self.outer_pool.pop().unwrap_or_default()
    }

    /// A zeroed pooled bitmap of `words` words.
    fn take_bits(&mut self, words: usize) -> Vec<u64> {
        let mut b = self.bit_pool.pop().unwrap_or_default();
        b.clear();
        b.resize(words, 0);
        b
    }

    fn recycle_bits(&mut self, b: Vec<u64>) {
        self.bit_pool.push(b);
    }

    /// Returns a finished join's vectors — inner lists and the outer
    /// spine — to the pools.
    pub fn recycle(&mut self, join: JoinResult) {
        let mut outer = join.lists;
        self.pool.extend(outer.drain(..).map(|mut v| {
            v.clear();
            v
        }));
        self.outer_pool.push(outer);
    }

    /// Number of pooled vectors (introspection for tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// A fresh stamp epoch over `n` pid slots; slots stamped in earlier
    /// epochs read as unmarked without clearing the array.
    fn next_epoch(&mut self, n: usize) -> u32 {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.epoch
    }
}

/// Per-estimator lock-free memo tables over the shared [`JoinIndexCache`].
///
/// A `JoinMemo` is a plain `Vec`-indexed mirror owned by one estimator:
/// adjacency rows are keyed by `(dense tag index, axis)`, seed bitmaps by
/// `(dense tag index, rooted)`, and relation masks by the adjacency
/// layout, each slot filled on first miss. A flat-table miss first probes
/// the shared cache's epoch-published snapshot — held here and
/// revalidated with a single atomic epoch load, refreshed (one mutex
/// acquisition) only when another worker has published since — so a warm
/// shared cache is absorbed into the flat tables without ever taking a
/// lock. Only a key absent from the snapshot falls through to the shared
/// cache's cold build-and-publish path.
///
/// A memo is only meaningful against a single `(summary, JoinIndexCache)`
/// pair — the estimator owns one of each for its whole lifetime, which
/// guarantees the pairing by construction. Callers driving the kernels
/// directly must do the same or pass `None`.
#[derive(Debug, Default)]
pub struct JoinMemo {
    /// Tag-interner width the tables are sized for (fixed at first use;
    /// a summary's interner never grows after construction).
    ntags: usize,
    /// `(tag_u, axis)`-indexed rows of `(tag_v)`-indexed adjacency slots,
    /// allocated lazily per touched row — `tag_u.index() * 2 + child`.
    adj_rows: Vec<Option<AdjacencyRow>>,
    /// `(tag, rooted)`-indexed seed bitmaps — `tag.index() * 2 + rooted`.
    seeds: Vec<Option<Arc<Vec<u64>>>>,
    /// `(tag_u, axis)`-indexed rows of `(tag_v)`-indexed relation-mask
    /// slots, laid out like `adj_rows`.
    mask_rows: Vec<Option<MaskRow>>,
    /// Held snapshot of the shared adjacency/seed cache and the epoch it
    /// was (at least) current at.
    index_snapshot: Option<Arc<JoinIndexSnapshot>>,
    index_epoch: u64,
    /// Held snapshot of the shared relation-mask cache.
    mask_snapshot: Option<Arc<RelationMaskSnapshot>>,
    mask_epoch: u64,
}

/// One lazily-allocated memo row: `tag_v`-indexed adjacency slots.
type AdjacencyRow = Box<[Option<Arc<ContainmentAdjacency>>]>;

/// One lazily-allocated memo row: `tag_v`-indexed relation-mask slots.
type MaskRow = Box<[Option<Arc<PathIdBits>>]>;

impl JoinMemo {
    /// Creates an empty memo; tables size themselves on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, ntags: usize) {
        if ntags > self.ntags {
            self.ntags = ntags;
            self.adj_rows.clear();
            self.adj_rows.resize_with(ntags * 2, || None);
            self.seeds.clear();
            self.seeds.resize_with(ntags * 2, || None);
            self.mask_rows.clear();
            self.mask_rows.resize_with(ntags * 2, || None);
        }
    }

    /// The held index snapshot, refreshed when the shared cache's epoch
    /// has moved past the one this memo last observed.
    fn index_snapshot(&mut self, cache: &JoinIndexCache) -> &JoinIndexSnapshot {
        let epoch = cache.epoch();
        if self.index_snapshot.is_none() || self.index_epoch != epoch {
            self.index_snapshot = Some(cache.snapshot());
            self.index_epoch = epoch;
        }
        self.index_snapshot.as_deref().expect("just refreshed")
    }

    /// The adjacency of `(tag_u, tag_v, child)`, served from the flat
    /// table; a flat miss probes the lock-free snapshot before falling
    /// through to the shared cache's build-and-publish path.
    fn adjacency(
        &mut self,
        summary: &Summary,
        cache: &JoinIndexCache,
        tag_u: TagId,
        tag_v: TagId,
        child: bool,
    ) -> Arc<ContainmentAdjacency> {
        self.ensure(summary.tags.len());
        let slot = tag_u.index() * 2 + usize::from(child);
        if let Some(row) = &self.adj_rows[slot] {
            if let Some(a) = &row[tag_v.index()] {
                return Arc::clone(a);
            }
        }
        let a = self
            .index_snapshot(cache)
            .adjacency(tag_u, tag_v, child)
            .cloned()
            .unwrap_or_else(|| summary.adjacency(cache, tag_u, tag_v, child));
        let ntags = self.ntags;
        let row = self.adj_rows[slot].get_or_insert_with(|| vec![None; ntags].into_boxed_slice());
        row[tag_v.index()] = Some(Arc::clone(&a));
        a
    }

    /// The seed bitmap of `(tag, rooted)`, served from the flat table;
    /// a flat miss probes the lock-free snapshot before falling through
    /// to the shared cache's build-and-publish path.
    fn seed(
        &mut self,
        summary: &Summary,
        cache: &JoinIndexCache,
        tag: TagId,
        rooted: bool,
        set_words: usize,
    ) -> Arc<Vec<u64>> {
        self.ensure(summary.tags.len());
        let slot = tag.index() * 2 + usize::from(rooted);
        if let Some(s) = &self.seeds[slot] {
            return Arc::clone(s);
        }
        let s = self
            .index_snapshot(cache)
            .seed(tag, rooted)
            .cloned()
            .unwrap_or_else(|| {
                cache.seed_bitmap(tag, rooted, || {
                    build_seed_bitmap(summary, tag, rooted, set_words)
                })
            });
        self.seeds[slot] = Some(Arc::clone(&s));
        s
    }

    /// The relation mask of `(tag_u, tag_v, child)`, served from the
    /// flat table; a flat miss probes the mask cache's lock-free
    /// snapshot before falling through to its publish path. Only
    /// adjacency-less edges ever ask for a mask, so on the engine's
    /// kernels this table stays empty.
    fn mask(
        &mut self,
        summary: &Summary,
        cache: &RelationMaskCache,
        tag_u: TagId,
        tag_v: TagId,
        child: bool,
    ) -> Arc<PathIdBits> {
        self.ensure(summary.tags.len());
        let slot = tag_u.index() * 2 + usize::from(child);
        if let Some(row) = &self.mask_rows[slot] {
            if let Some(m) = &row[tag_v.index()] {
                return Arc::clone(m);
            }
        }
        let epoch = cache.epoch();
        if self.mask_snapshot.is_none() || self.mask_epoch != epoch {
            self.mask_snapshot = Some(cache.snapshot());
            self.mask_epoch = epoch;
        }
        let m = self
            .mask_snapshot
            .as_deref()
            .expect("just refreshed")
            .get(tag_u, tag_v, child)
            .cloned()
            .unwrap_or_else(|| cache.get(&summary.encoding, tag_u, tag_v, child));
        let ntags = self.ntags;
        let row = self.mask_rows[slot].get_or_insert_with(|| vec![None; ntags].into_boxed_slice());
        row[tag_v.index()] = Some(Arc::clone(&m));
        m
    }
}

/// Builds the `(tag, rooted)` seed bitmap: every pid of `tag`'s
/// p-histogram, restricted to depth-0 pids when `rooted`.
fn build_seed_bitmap(summary: &Summary, tag: TagId, rooted: bool, set_words: usize) -> Vec<u64> {
    let mut s = vec![0u64; set_words];
    for &(pid, _) in summary.phist.histogram(tag).entries_slice() {
        if !rooted || summary.root_pids.pid_starts_with(tag, pid) {
            words::set_bit(&mut s, pid.index());
        }
    }
    s
}

impl JoinResult {
    /// `f_Q(n)`: the summed frequency of `n`'s surviving path ids.
    pub fn frequency(&self, n: QueryNodeId) -> f64 {
        self.lists[n.index()].iter().map(|&(_, f)| f).sum()
    }

    /// The surviving pids of `n`.
    pub fn pids(&self, n: QueryNodeId) -> impl Iterator<Item = Pid> + '_ {
        self.lists[n.index()].iter().map(|&(p, _)| p)
    }
}

/// Runs the reference path join of `query` against `summary`: fresh
/// relation masks per edge, nested-loop containment tests, all edges
/// re-swept until a pass changes nothing. Kept unoptimized on purpose —
/// it is the oracle the indexed kernel is property-tested against.
pub fn path_join(summary: &Summary, query: &Query) -> JoinResult {
    let mut lists = seed_lists(summary, query);

    // A `/`-rooted query pins its first step to the document root: keep
    // only ids whose paths carry the step's tag at depth 0. The reference
    // kernel re-derives this from the encoding table per pid (the shape
    // the precomputed `Summary::root_pids` index is validated against).
    if query.root_axis() == Axis::Child {
        let root_node = query.root();
        if let Some(tag) = summary.tags.get(&query.node(root_node).tag) {
            lists[root_node.index()].retain(|&(pid, _)| {
                summary
                    .pids
                    .bits(pid)
                    .ones()
                    .any(|enc| summary.encoding.path(enc).first() == Some(&tag))
            });
        } else {
            lists[root_node.index()].clear();
        }
    }

    let plan = QueryPlan::build(summary, query);
    let mut edges = Vec::new();
    resolve_edges(summary, &plan, &mut lists, None, None, None, &mut edges);

    // Nested-loop containment tests per edge, iterated to a fixpoint. The
    // loop terminates because every pass can only shrink the lists.
    loop {
        let mut changed = false;
        for edge in &edges {
            let (u_list, v_list) = two_lists(&mut lists, edge.u.index(), edge.v.index());
            let mask = edge
                .mask
                .as_deref()
                .expect("maskless edges need an adjacency");
            let compatible = |pu: Pid, pv: Pid| axis_compatible_masked(&summary.pids, pu, pv, mask);
            let before_u = u_list.len();
            u_list.retain(|&(pu, _)| v_list.iter().any(|&(pv, _)| compatible(pu, pv)));
            let before_v = v_list.len();
            v_list.retain(|&(pv, _)| u_list.iter().any(|&(pu, _)| compatible(pu, pv)));
            changed |= u_list.len() != before_u || v_list.len() != before_v;
        }
        if !changed {
            break;
        }
    }
    JoinResult { lists }
}

/// The indexed join kernel — [`path_join`] with memoized relation masks,
/// precomputed containment adjacency, pooled list allocations, the
/// summary's depth-0 root-pid sets, and a worklist fixpoint. Passing
/// `None` everywhere still runs the worklist schedule but resolves edges
/// through fresh masks, like the reference kernel. None of the caches
/// change the result, only the work done to produce it.
pub fn path_join_cached(
    summary: &Summary,
    query: &Query,
    masks: Option<&RelationMaskCache>,
    adjacency: Option<&JoinIndexCache>,
    scratch: Option<&mut JoinScratch>,
) -> JoinResult {
    path_join_budgeted(summary, query, masks, adjacency, scratch, None)
}

/// [`path_join_cached`] under a cooperative [`BudgetState`]: every
/// worklist edge examination charges the budget, and on exhaustion the
/// fixpoint stops where it stands. The interrupted result is a *superset*
/// of the true fixpoint (pruning only ever removes pids), so its
/// frequencies are over-estimates — callers treat any budget-exhausted
/// join as degraded and fall back to the `f(tag)` bound rather than
/// trusting the partial lists, and never publish it to a shared cache.
/// With `budget` `None` (or an unexhaustible budget) this is exactly
/// [`path_join_cached`].
pub fn path_join_budgeted(
    summary: &Summary,
    query: &Query,
    masks: Option<&RelationMaskCache>,
    adjacency: Option<&JoinIndexCache>,
    scratch: Option<&mut JoinScratch>,
    budget: Option<&BudgetState>,
) -> JoinResult {
    let plan = QueryPlan::build(summary, query);
    path_join_planned(
        summary, query, &plan, masks, adjacency, None, scratch, budget,
    )
}

/// [`path_join_budgeted`] against a caller-prepared [`QueryPlan`] with an
/// optional per-estimator [`JoinMemo`] — the shape the estimator drives:
/// plan built (or plan-cache-served) once per skeleton, memo warm after
/// the first join per `(tag, axis)` key, scratch recycled, so the screen
/// phase does no string hashing, no locking, and no allocation. The plan
/// and memo must have been built against this exact `summary` (and the
/// memo against this `adjacency`).
#[allow(clippy::too_many_arguments)]
pub fn path_join_planned(
    summary: &Summary,
    query: &Query,
    plan: &QueryPlan,
    masks: Option<&RelationMaskCache>,
    adjacency: Option<&JoinIndexCache>,
    memo: Option<&mut JoinMemo>,
    scratch: Option<&mut JoinScratch>,
    budget: Option<&BudgetState>,
) -> JoinResult {
    let mut local = JoinScratch::new();
    let scratch = match scratch {
        Some(s) => s,
        None => &mut local,
    };
    let mut timer = PhaseTimer::start(scratch.timing);
    let (mut screen_ns, mut fixpoint_ns) = (0u64, 0u64);

    // Seed each node's candidate list from its tag's p-histogram — one
    // interner-free histogram fetch per node via the plan's resolved tags.
    let mut lists = scratch.take_outer();
    for q in query.node_ids() {
        let mut list = scratch.take();
        if let Some(tag) = plan.tag(q) {
            list.extend_from_slice(summary.phist.histogram(tag).entries_slice());
        }
        lists.push(list);
    }

    // Root pinning via the summary's precomputed depth-0 pid sets — the
    // same filter the reference kernel re-derives per pid per query.
    if let Some(root_node) = plan.rooted() {
        match plan.tag(root_node) {
            Some(tag) => lists[root_node.index()]
                .retain(|&(pid, _)| summary.root_pids.pid_starts_with(tag, pid)),
            None => lists[root_node.index()].clear(),
        }
    }

    let mut edges = std::mem::take(&mut scratch.resolved);
    resolve_edges(
        summary, plan, &mut lists, masks, adjacency, memo, &mut edges,
    );

    // Worklist fixpoint: an edge is re-examined only when one of its
    // endpoint lists shrank since it was last processed. Seeded with every
    // edge; termination is bounded by total list length, since an edge is
    // only re-enqueued after a strict shrink.
    let mut incident = std::mem::take(&mut scratch.incident);
    let mut queued = std::mem::take(&mut scratch.queued);
    let mut worklist = std::mem::take(&mut scratch.worklist);
    prime_worklist(
        &mut incident,
        &mut queued,
        &mut worklist,
        query.len(),
        edges.len(),
        |ei| (edges[ei].u.index(), edges[ei].v.index()),
    );
    let stamps = scratch;
    timer.lap(&mut screen_ns);
    while let Some(ei) = worklist.pop_front() {
        if let Some(b) = budget {
            if !b.charge_edge() {
                break;
            }
        }
        queued[ei] = false;
        let edge = &edges[ei];
        let (u_list, v_list) = two_lists(&mut lists, edge.u.index(), edge.v.index());
        let before_u = u_list.len();
        let before_v = v_list.len();
        match &edge.adj {
            Some(adj) => {
                // Semi-join over adjacency rows: mark one side's surviving
                // pids, keep the other side's pids whose row hits a mark.
                let epoch = stamps.next_epoch(summary.pids.len());
                for &(pv, _) in v_list.iter() {
                    stamps.stamp[pv.index()] = epoch;
                }
                u_list.retain(|&(pu, _)| {
                    adj.forward(pu)
                        .iter()
                        .any(|pv| stamps.stamp[pv.index()] == epoch)
                });
                let epoch = stamps.next_epoch(summary.pids.len());
                for &(pu, _) in u_list.iter() {
                    stamps.stamp[pu.index()] = epoch;
                }
                v_list.retain(|&(pv, _)| {
                    adj.reverse(pv)
                        .iter()
                        .any(|pu| stamps.stamp[pu.index()] == epoch)
                });
            }
            None => {
                let mask = edge
                    .mask
                    .as_deref()
                    .expect("maskless edges need an adjacency");
                let compatible =
                    |pu: Pid, pv: Pid| axis_compatible_masked(&summary.pids, pu, pv, mask);
                u_list.retain(|&(pu, _)| v_list.iter().any(|&(pv, _)| compatible(pu, pv)));
                v_list.retain(|&(pv, _)| u_list.iter().any(|&(pu, _)| compatible(pu, pv)));
            }
        }
        // Re-enqueue neighbors of shrunk endpoints — including this edge:
        // pruning v against the already-pruned u can strand pids in u.
        for (node, before, list_len) in [
            (edge.u, before_u, lists[edge.u.index()].len()),
            (edge.v, before_v, lists[edge.v.index()].len()),
        ] {
            if list_len == before {
                continue;
            }
            for &other in &incident[node.index()] {
                if !queued[other] {
                    queued[other] = true;
                    worklist.push_back(other);
                }
            }
        }
    }
    timer.lap(&mut fixpoint_ns);
    stamps.phases.screen_ns += screen_ns;
    stamps.phases.fixpoint_ns += fixpoint_ns;
    // Hand the hoisted structures back; the edge vector is cleared so
    // stale `Arc`s never outlive this call's summary.
    edges.clear();
    stamps.resolved = edges;
    stamps.incident = incident;
    stamps.queued = queued;
    stamps.worklist = worklist;
    JoinResult { lists }
}

/// The bit-parallel join kernel: the same worklist fixpoint as
/// [`path_join_cached`], but each query node's surviving set is a
/// pid-index bitmap and each edge examination is a word-parallel
/// semi-join over the adjacency's precomputed bitmap rows and candidate
/// bitmaps. Final `(pid, frequency)` lists are rebuilt by filtering the
/// p-histogram entries through the final bitmaps — histogram order is
/// exactly the order the list kernels' `retain` preserves, so the lists
/// (and every downstream `f64` sum) are bit-identical to both other
/// kernels.
pub fn path_join_bitmap(
    summary: &Summary,
    query: &Query,
    adjacency: &JoinIndexCache,
    scratch: Option<&mut JoinScratch>,
) -> JoinResult {
    path_join_bitmap_budgeted(summary, query, adjacency, scratch, None)
}

/// [`path_join_bitmap`] under a cooperative [`BudgetState`]. The worklist
/// schedule — seeding, shrink detection, re-enqueue order — mirrors
/// [`path_join_budgeted`] step for step, so a given `(summary, query)`
/// charges **exactly the same edge count** as the indexed kernel, and
/// budget exhaustion truncates at the same point.
pub fn path_join_bitmap_budgeted(
    summary: &Summary,
    query: &Query,
    adjacency: &JoinIndexCache,
    scratch: Option<&mut JoinScratch>,
    budget: Option<&BudgetState>,
) -> JoinResult {
    let plan = QueryPlan::build(summary, query);
    path_join_bitmap_planned_inner(
        summary, query, &plan, adjacency, None, scratch, budget, true,
    )
}

/// [`path_join_bitmap_budgeted`] against a caller-prepared [`QueryPlan`]
/// with an optional per-estimator [`JoinMemo`] — see
/// [`path_join_planned`] for the pairing contract. On the warm path —
/// plan cached, memo filled, scratch recycled — the screen phase is pure
/// word moves: one bitmap copy per node and one `Vec` push per edge.
#[allow(clippy::too_many_arguments)]
pub fn path_join_bitmap_planned(
    summary: &Summary,
    query: &Query,
    plan: &QueryPlan,
    adjacency: &JoinIndexCache,
    memo: Option<&mut JoinMemo>,
    scratch: Option<&mut JoinScratch>,
    budget: Option<&BudgetState>,
) -> JoinResult {
    path_join_bitmap_planned_inner(summary, query, plan, adjacency, memo, scratch, budget, true)
}

/// Bench-only ablation: the bitmap fixpoint without consulting the
/// precomputed candidate bitmaps (every per-pid row test runs, including
/// on pids the candidate screen would have cleared in one word op).
/// Identical results, strictly more work — exists so the Criterion bench
/// can price the candidate-bitmap optimization in isolation.
#[doc(hidden)]
pub fn path_join_bitmap_unscreened(
    summary: &Summary,
    query: &Query,
    adjacency: &JoinIndexCache,
    scratch: Option<&mut JoinScratch>,
) -> JoinResult {
    let plan = QueryPlan::build(summary, query);
    path_join_bitmap_planned_inner(summary, query, &plan, adjacency, None, scratch, None, false)
}

#[allow(clippy::too_many_arguments)]
fn path_join_bitmap_planned_inner(
    summary: &Summary,
    query: &Query,
    plan: &QueryPlan,
    adjacency: &JoinIndexCache,
    mut memo: Option<&mut JoinMemo>,
    scratch: Option<&mut JoinScratch>,
    budget: Option<&BudgetState>,
    use_cand: bool,
) -> JoinResult {
    let mut local = JoinScratch::new();
    let scratch = match scratch {
        Some(s) => s,
        None => &mut local,
    };
    let mut timer = PhaseTimer::start(scratch.timing);
    let (mut screen_ns, mut fixpoint_ns, mut finalize_ns) = (0u64, 0u64, 0u64);

    let set_words = summary.pids.len().div_ceil(64);

    // Seed one bitmap per query node from the memoized per-(tag, rooted)
    // seed bitmaps — root pinning is baked into the rooted seeds, so a
    // warm seed turns per-entry seeding + pinning into one word copy.
    let mut node_bits = std::mem::take(&mut scratch.node_bits);
    let mut counts = std::mem::take(&mut scratch.counts);
    debug_assert!(node_bits.is_empty(), "node bitmaps recycled before reuse");
    counts.clear();
    for q in query.node_ids() {
        let mut bm = scratch.take_bits(set_words);
        let rooted = plan.rooted() == Some(q);
        if let Some(tag) = plan.tag(q) {
            let seed = match memo.as_deref_mut() {
                Some(m) => m.seed(summary, adjacency, tag, rooted, set_words),
                None => adjacency.seed_bitmap(tag, rooted, || {
                    build_seed_bitmap(summary, tag, rooted, set_words)
                }),
            };
            bm.copy_from_slice(&seed);
        }
        counts.push(words::count_ones(&bm) as usize);
        node_bits.push(bm);
    }

    // Resolve each structural edge to its containment adjacency; unknown
    // tags kill both endpoints outright, exactly like `resolve_edges`.
    let mut edges = std::mem::take(&mut scratch.bit_edges);
    edges.clear();
    for e in plan.edges() {
        let Some((tag_u, tag_v)) = e.tags else {
            node_bits[e.u.index()].fill(0);
            counts[e.u.index()] = 0;
            node_bits[e.v.index()].fill(0);
            counts[e.v.index()] = 0;
            continue;
        };
        let adj = match memo.as_deref_mut() {
            Some(m) => m.adjacency(summary, adjacency, tag_u, tag_v, e.child),
            None => summary.adjacency(adjacency, tag_u, tag_v, e.child),
        };
        edges.push(BitEdge {
            u: e.u,
            v: e.v,
            adj,
        });
    }

    // The same worklist fixpoint as the indexed kernel: seeded with every
    // edge, an edge re-enqueued only when an endpoint shrank, one budget
    // charge per pop. Since every per-edge step computes the identical
    // surviving sets, the shrink events — and with them the pop sequence
    // and charged edge counts — coincide step for step.
    let mut incident = std::mem::take(&mut scratch.incident);
    let mut queued = std::mem::take(&mut scratch.queued);
    let mut worklist = std::mem::take(&mut scratch.worklist);
    prime_worklist(
        &mut incident,
        &mut queued,
        &mut worklist,
        query.len(),
        edges.len(),
        |ei| (edges[ei].u.index(), edges[ei].v.index()),
    );
    let mut acc = std::mem::take(&mut scratch.acc);
    acc.clear();
    acc.resize(set_words, 0);
    timer.lap(&mut screen_ns);
    while let Some(ei) = worklist.pop_front() {
        if let Some(b) = budget {
            if !b.charge_edge() {
                break;
            }
        }
        queued[ei] = false;
        let edge = &edges[ei];
        let (ub, vb) = two_lists(&mut node_bits, edge.u.index(), edge.v.index());
        let before_u = counts[edge.u.index()];
        let before_v = counts[edge.v.index()];
        counts[edge.u.index()] = semi_join_bits(
            ub, before_u, vb, before_v, &edge.adj, true, use_cand, &mut acc,
        );
        counts[edge.v.index()] = semi_join_bits(
            vb,
            before_v,
            ub,
            counts[edge.u.index()],
            &edge.adj,
            false,
            use_cand,
            &mut acc,
        );
        for (node, before) in [(edge.u, before_u), (edge.v, before_v)] {
            if counts[node.index()] == before {
                continue;
            }
            for &other in &incident[node.index()] {
                if !queued[other] {
                    queued[other] = true;
                    worklist.push_back(other);
                }
            }
        }
    }
    timer.lap(&mut fixpoint_ns);

    // Rebuild the (pid, frequency) lists by filtering each node's
    // histogram entries through its final bitmap. The list kernels'
    // `retain` calls preserve histogram order, so this produces the same
    // entries in the same order — downstream f64 sums are bit-identical.
    let mut lists = scratch.take_outer();
    for q in query.node_ids() {
        let mut list = scratch.take();
        if counts[q.index()] > 0 {
            if let Some(tag) = plan.tag(q) {
                let bm = &node_bits[q.index()];
                list.extend(
                    summary
                        .phist
                        .histogram(tag)
                        .entries_slice()
                        .iter()
                        .filter(|(p, _)| words::test_bit(bm, p.index()))
                        .copied(),
                );
            }
        }
        lists.push(list);
    }
    timer.lap(&mut finalize_ns);

    // Hand the hoisted structures back; the edge vector is cleared so
    // stale `Arc`s never outlive this call's summary, and the drained
    // node bitmaps recycle through the bitmap pool.
    scratch.acc = acc;
    for bm in node_bits.drain(..) {
        scratch.recycle_bits(bm);
    }
    scratch.node_bits = node_bits;
    scratch.counts = counts;
    edges.clear();
    scratch.bit_edges = edges;
    scratch.incident = incident;
    scratch.queued = queued;
    scratch.worklist = worklist;
    scratch.phases.screen_ns += screen_ns;
    scratch.phases.fixpoint_ns += fixpoint_ns;
    scratch.phases.finalize_ns += finalize_ns;
    JoinResult { lists }
}

/// One structural query edge resolved to its containment adjacency (the
/// bitmap kernel needs no mask — the adjacency folds the mask test in).
#[derive(Debug)]
struct BitEdge {
    u: QueryNodeId,
    v: QueryNodeId,
    adj: Arc<ContainmentAdjacency>,
}

/// Rebuilds the hoisted worklist state for a join over `n_edges` edges
/// incident to `n_nodes` query nodes: per-node incident edge lists, all
/// edges queued, FIFO order `0..n_edges` — the exact seeding both
/// fixpoints have always used, so budget charge sequences are unchanged.
fn prime_worklist(
    incident: &mut Vec<Vec<usize>>,
    queued: &mut Vec<bool>,
    worklist: &mut VecDeque<usize>,
    n_nodes: usize,
    n_edges: usize,
    endpoints: impl Fn(usize) -> (usize, usize),
) {
    if incident.len() < n_nodes {
        incident.resize_with(n_nodes, Vec::new);
    }
    for l in incident[..n_nodes].iter_mut() {
        l.clear();
    }
    for ei in 0..n_edges {
        let (u, v) = endpoints(ei);
        incident[u].push(ei);
        incident[v].push(ei);
    }
    queued.clear();
    queued.resize(n_edges, true);
    worklist.clear();
    worklist.extend(0..n_edges);
}

/// One direction of the bitmap semi-join: keep in `dst` only pids whose
/// adjacency row (forward rows when `forward`, else reverse) intersects
/// `src`. Two strategies compute the identical set — test each surviving
/// `dst` pid's row against `src`, or union the `src` pids' opposite-side
/// rows into `acc` and intersect — and the smaller side picks which, so
/// the work tracks `min(|dst|, |src|)` row touches. Returns `dst`'s new
/// population count.
#[allow(clippy::too_many_arguments)]
fn semi_join_bits(
    dst: &mut [u64],
    dst_count: usize,
    src: &[u64],
    src_count: usize,
    adj: &ContainmentAdjacency,
    forward: bool,
    use_cand: bool,
    acc: &mut [u64],
) -> usize {
    // Candidate screen: pids outside the relation have empty rows and
    // cannot survive; one word-parallel AND clears them all before any
    // per-pid work. (The per-row `None` checks below make this redundant
    // for correctness — it only saves the per-bit walks.)
    if use_cand {
        words::and_assign(dst, adj.candidates());
    }
    if dst_count <= src_count {
        for (wi, word) in dst.iter_mut().enumerate() {
            let mut w = *word;
            let mut keep = w;
            while w != 0 {
                let b = w.trailing_zeros();
                w &= w - 1;
                let pid = Pid::from_index(wi * 64 + b as usize);
                let row = if forward {
                    adj.forward_bits(pid)
                } else {
                    adj.reverse_bits(pid)
                };
                if !row.is_some_and(|r| words::intersects(r, src)) {
                    keep &= !(1u64 << b);
                }
            }
            *word = keep;
        }
    } else {
        acc.fill(0);
        for v in words::ones(src) {
            let pid = Pid::from_index(v);
            let row = if forward {
                adj.reverse_bits(pid)
            } else {
                adj.forward_bits(pid)
            };
            if let Some(r) = row {
                words::or_assign(acc, r);
            }
        }
        words::and_assign(dst, acc);
    }
    words::count_ones(dst) as usize
}

/// Seeds each query node's candidate list from its tag's p-histogram
/// (the reference kernel's string-keyed shape; the fast kernels seed
/// through the plan's resolved tags instead).
fn seed_lists(summary: &Summary, query: &Query) -> Vec<Vec<(Pid, f64)>> {
    query
        .node_ids()
        .map(|q| {
            let mut list = Vec::new();
            if let Some(h) = summary.phistogram(&query.node(q).tag) {
                list.extend_from_slice(h.entries_slice());
            }
            list
        })
        .collect()
}

/// One structural query edge with its resolved pruning machinery. The
/// mask is only materialized when no adjacency serves the edge — the
/// adjacency already folded the mask test into its pair relation, so
/// resolving both would be a pure waste of a mask-cache probe.
#[derive(Debug)]
struct ResolvedEdge {
    u: QueryNodeId,
    v: QueryNodeId,
    mask: Option<Arc<PathIdBits>>,
    adj: Option<Arc<ContainmentAdjacency>>,
}

/// Resolves each plan edge's pruning machinery into `out` once — one
/// resolution serves every pid-pair test of the edge across every
/// fixpoint step. Dead edges (an endpoint tag absent from the summary)
/// kill both endpoint lists outright (nothing in a shrinking fixpoint can
/// resurrect them), so such edges drop out here.
fn resolve_edges(
    summary: &Summary,
    plan: &QueryPlan,
    lists: &mut [Vec<(Pid, f64)>],
    masks: Option<&RelationMaskCache>,
    adjacency: Option<&JoinIndexCache>,
    mut memo: Option<&mut JoinMemo>,
    out: &mut Vec<ResolvedEdge>,
) {
    out.clear();
    for e in plan.edges() {
        let Some((tag_u, tag_v)) = e.tags else {
            lists[e.u.index()].clear();
            lists[e.v.index()].clear();
            continue;
        };
        let adj = adjacency.map(|cache| match memo.as_deref_mut() {
            Some(m) => m.adjacency(summary, cache, tag_u, tag_v, e.child),
            None => summary.adjacency(cache, tag_u, tag_v, e.child),
        });
        let mask = if adj.is_some() {
            None
        } else {
            Some(match (masks, memo.as_deref_mut()) {
                (Some(cache), Some(m)) => m.mask(summary, cache, tag_u, tag_v, e.child),
                (Some(cache), None) => cache.get(&summary.encoding, tag_u, tag_v, e.child),
                (None, _) => Arc::new(relation_mask(&summary.encoding, tag_u, tag_v, e.child)),
            })
        };
        out.push(ResolvedEdge {
            u: e.u,
            v: e.v,
            mask,
            adj,
        });
    }
}

fn two_lists<T>(v: &mut [Vec<T>], a: usize, b: usize) -> (&mut Vec<T>, &mut Vec<T>) {
    assert_ne!(a, b, "query edges never self-loop");
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_synopsis::SummaryConfig;
    use xpe_xpath::parse_query;

    fn summary() -> Summary {
        Summary::build(
            &xpe_xml::fixtures::paper_figure1(),
            SummaryConfig::default(),
        )
    }

    /// The surviving pid bit strings of a query node, sorted.
    fn pids_of(s: &Summary, j: &JoinResult, q: &Query, tag: &str) -> Vec<String> {
        let node = q
            .node_ids()
            .find(|&n| q.node(n).tag == tag)
            .expect("tag in query");
        let mut v: Vec<String> = j.pids(node).map(|p| s.pids.bits(p).to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn paper_example_4_1_join() {
        // Q1 = //A[/C/F]/B/D (Figure 3): after the join A = {p7},
        // C = {p3}, F = {p1}, B = {p5}, D = {p5}.
        let s = summary();
        let q = parse_query("//A[/C/F]/B/D").unwrap();
        let j = path_join(&s, &q);
        assert_eq!(pids_of(&s, &j, &q, "A"), vec!["1011"]); // p7
        assert_eq!(pids_of(&s, &j, &q, "C"), vec!["0011"]); // p3
        assert_eq!(pids_of(&s, &j, &q, "F"), vec!["0001"]); // p1
        assert_eq!(pids_of(&s, &j, &q, "B"), vec!["1000"]); // p5
        assert_eq!(pids_of(&s, &j, &q, "D"), vec!["1000"]); // p5
                                                            // Frequencies: f(A)=1, f(B)=3, f(D)=4 (Figure 3(b)).
        let a = q.root();
        assert_eq!(j.frequency(a), 1.0);
    }

    #[test]
    fn paper_example_4_2_simple_query() {
        // //A//C: A keeps {p6, p7}, C keeps {p2, p3}; both selectivities 2.
        let s = summary();
        let q = parse_query("//A//C").unwrap();
        let j = path_join(&s, &q);
        assert_eq!(pids_of(&s, &j, &q, "A"), vec!["1010", "1011"]); // p6, p7
        assert_eq!(pids_of(&s, &j, &q, "C"), vec!["0010", "0011"]); // p2, p3
        assert_eq!(j.frequency(q.root()), 2.0);
        assert_eq!(j.frequency(q.target()), 2.0);
    }

    #[test]
    fn paper_example_4_3_branch_overestimate() {
        // Q2 = //C[/E]/F: E keeps {(p2, 2)} — the join's known
        // over-estimate the branch formula later corrects to 1.
        let s = summary();
        let q = parse_query("//C[/$E]/F").unwrap();
        let j = path_join(&s, &q);
        assert_eq!(pids_of(&s, &j, &q, "E"), vec!["0010"]);
        assert_eq!(j.frequency(q.target()), 2.0);
        // C itself is exact: {p3} with frequency 1.
        assert_eq!(j.frequency(q.root()), 1.0);
    }

    #[test]
    fn unknown_tag_empties_the_query() {
        let s = summary();
        let q = parse_query("//A/Zebra").unwrap();
        let j = path_join(&s, &q);
        assert_eq!(j.frequency(q.root()), 0.0);
        assert_eq!(j.frequency(q.target()), 0.0);
    }

    #[test]
    fn incompatible_axis_prunes_everything() {
        // D is never a parent of A.
        let s = summary();
        let q = parse_query("//D/A").unwrap();
        let j = path_join(&s, &q);
        assert_eq!(j.frequency(q.target()), 0.0);
    }

    #[test]
    fn child_vs_descendant_pruning_differs() {
        // //Root/E: E is never a child of Root → empty.
        let s = summary();
        let child = parse_query("/Root/E").unwrap();
        assert_eq!(path_join(&s, &child).frequency(child.target()), 0.0);
        // //Root//E: all three E's survive.
        let desc = parse_query("/Root//E").unwrap();
        assert_eq!(path_join(&s, &desc).frequency(desc.target()), 3.0);
    }

    #[test]
    fn join_ignores_order_constraints() {
        let s = summary();
        let plain = parse_query("//A[/C]/B").unwrap();
        let ordered = parse_query("//A[/C/folls::$B]").unwrap();
        let jp = path_join(&s, &plain);
        let jo = path_join(&s, &ordered);
        // Same structural pruning on B regardless of the constraint.
        assert_eq!(
            pids_of(&s, &jp, &plain, "B"),
            pids_of(&s, &jo, &ordered, "B")
        );
    }

    /// Every cache/index combination of the fast kernel agrees with the
    /// reference kernel bit for bit, list for list, on every test query.
    #[test]
    fn indexed_kernel_matches_reference_on_all_shapes() {
        let s = summary();
        let queries = [
            "//A[/C/F]/B/D",
            "//A//C",
            "//C[/$E]/F",
            "//A/Zebra",
            "//D/A",
            "/Root/E",
            "/Root//E",
            "//A[/C]/B",
            "/Root/A/C/F",
            "//Root[/A]//E",
        ];
        let masks = RelationMaskCache::new();
        let index = JoinIndexCache::new();
        let mut scratch = JoinScratch::new();
        for q in queries {
            let query = parse_query(q).unwrap();
            let reference = path_join(&s, &query);
            for (m, a, use_scratch) in [
                (None, None, false),
                (Some(&masks), None, false),
                (Some(&masks), Some(&index), false),
                (Some(&masks), Some(&index), true),
                (None, Some(&index), true),
            ] {
                let fast = path_join_cached(&s, &query, m, a, use_scratch.then_some(&mut scratch));
                assert_eq!(reference.lists.len(), fast.lists.len(), "{q}");
                for (rl, fl) in reference.lists.iter().zip(&fast.lists) {
                    let rb: Vec<(Pid, u64)> = rl.iter().map(|&(p, f)| (p, f.to_bits())).collect();
                    let fb: Vec<(Pid, u64)> = fl.iter().map(|&(p, f)| (p, f.to_bits())).collect();
                    assert_eq!(rb, fb, "{q} masks={} adj={}", m.is_some(), a.is_some());
                }
                if use_scratch {
                    scratch.recycle(fast);
                }
            }
        }
    }

    /// The bitmap kernel — screened, unscreened, with and without scratch
    /// — agrees with the reference kernel bit for bit on every test query.
    #[test]
    fn bitmap_kernel_matches_reference_on_all_shapes() {
        let s = summary();
        let queries = [
            "//A[/C/F]/B/D",
            "//A//C",
            "//C[/$E]/F",
            "//A/Zebra",
            "//D/A",
            "/Root/E",
            "/Root//E",
            "//A[/C]/B",
            "/Root/A/C/F",
            "//Root[/A]//E",
        ];
        let index = JoinIndexCache::new();
        let mut scratch = JoinScratch::new();
        scratch.set_timing(true);
        for q in queries {
            let query = parse_query(q).unwrap();
            let reference = path_join(&s, &query);
            for variant in 0..3 {
                let fast = match variant {
                    0 => path_join_bitmap(&s, &query, &index, None),
                    1 => path_join_bitmap(&s, &query, &index, Some(&mut scratch)),
                    _ => path_join_bitmap_unscreened(&s, &query, &index, Some(&mut scratch)),
                };
                assert_eq!(reference.lists.len(), fast.lists.len(), "{q}");
                for (rl, fl) in reference.lists.iter().zip(&fast.lists) {
                    let rb: Vec<(Pid, u64)> = rl.iter().map(|&(p, f)| (p, f.to_bits())).collect();
                    let fb: Vec<(Pid, u64)> = fl.iter().map(|&(p, f)| (p, f.to_bits())).collect();
                    assert_eq!(rb, fb, "{q} variant={variant}");
                }
                if variant > 0 {
                    scratch.recycle(fast);
                }
            }
        }
        // Timing was enabled: the phase breakdown accumulated something.
        let phases = scratch.phase_stats();
        assert!(
            phases.screen_ns + phases.fixpoint_ns + phases.finalize_ns > 0,
            "{phases:?}"
        );
        scratch.reset_phase_stats();
        assert_eq!(scratch.phase_stats(), JoinPhaseStats::default());
    }

    /// Bitmap and indexed kernels charge a budget the exact same edge
    /// counts — truncated or not — so serve-layer degradation decisions
    /// are kernel-independent.
    #[test]
    fn bitmap_budget_charges_identical_edge_counts() {
        use crate::serve::Budget;
        let s = summary();
        let masks = RelationMaskCache::new();
        let index = JoinIndexCache::new();
        for q in ["//A[/C/F]/B/D", "//A//C", "/Root//E", "//Root[/A]//E"] {
            let query = parse_query(q).unwrap();
            for max_edges in [0u64, 1, 2, 3, 5, 1_000] {
                let budget = Budget {
                    deadline: None,
                    max_join_edges: Some(max_edges),
                };
                let bi = BudgetState::start(&budget);
                let indexed =
                    path_join_budgeted(&s, &query, Some(&masks), Some(&index), None, Some(&bi));
                let bb = BudgetState::start(&budget);
                let bitmap = path_join_bitmap_budgeted(&s, &query, &index, None, Some(&bb));
                assert_eq!(
                    bi.edges_charged(),
                    bb.edges_charged(),
                    "{q} max_edges={max_edges}"
                );
                assert_eq!(
                    bi.exhausted().is_some(),
                    bb.exhausted().is_some(),
                    "{q} max_edges={max_edges}"
                );
                // Under no (or un-hit) truncation the results also match.
                if bi.exhausted().is_none() {
                    for (il, bl) in indexed.lists.iter().zip(&bitmap.lists) {
                        assert_eq!(il, bl, "{q} max_edges={max_edges}");
                    }
                }
            }
        }
    }

    #[test]
    fn kernel_selector_parses_and_names() {
        for k in JoinKernel::ALL {
            assert_eq!(JoinKernel::parse(k.name()), Some(k));
        }
        assert_eq!(JoinKernel::parse("warp"), None);
        assert_eq!(JoinKernel::default(), JoinKernel::Bitmap);
    }

    #[test]
    fn stamp_epochs_survive_wraparound() {
        let mut s = JoinScratch::new();
        s.epoch = u32::MAX - 1;
        let e1 = s.next_epoch(4);
        s.stamp[0] = e1;
        let e2 = s.next_epoch(4); // wraps: stamp cleared, epoch restarts at 1
        assert_eq!(e2, 1);
        assert_ne!(s.stamp[0], e2, "stale marks never alias a fresh epoch");
    }
}
