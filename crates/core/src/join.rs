//! The path id join (paper §4, Figure 3).
//!
//! Every query node starts with the full `(pid, frequency)` list of its tag
//! from the p-histogram; path ids that cannot satisfy the containment and
//! tag-relationship test along some query edge are removed, iterating to a
//! fixpoint. The surviving frequencies are the `f_Q(n)` values the
//! estimation formulas consume.
//!
//! Two kernels produce that fixpoint:
//!
//! * [`path_join`] — the reference kernel: per-edge relation masks and an
//!   iterate-all-edges-until-stable loop, exactly the paper's Figure 3.
//!   No caches, no indexes; the proptests pin every optimization below
//!   against it bit for bit.
//! * [`path_join_cached`] — the indexed kernel the estimator runs: edges
//!   resolve to precomputed [`ContainmentAdjacency`] rows (containment +
//!   relation-mask test folded into one sorted pid list per endpoint), the
//!   root-pinning check reads the summary's precomputed depth-0 pid sets,
//!   and a **worklist fixpoint** re-examines only edges whose endpoint
//!   lists shrank in the previous step instead of sweeping every edge per
//!   pass.
//!
//! The fixpoint both kernels compute is the *greatest* set of surviving
//! pids closed under every edge constraint. Each pruning step is monotone
//! (it only removes pids, and removing pids can only enable more
//! removals), so the fixpoint is unique regardless of the order edges are
//! examined in — which is what makes the worklist schedule, the adjacency
//! rows, and the naive scan interchangeable bit for bit: `retain` keeps
//! histogram order, so identical surviving sets sum to identical `f64`s.

use std::collections::VecDeque;
use std::sync::Arc;

use xpe_pathid::{
    axis_compatible_masked, relation_mask, ContainmentAdjacency, JoinIndexCache, PathIdBits, Pid,
    RelationMaskCache,
};
use xpe_synopsis::Summary;
use xpe_xpath::{Axis, Query, QueryNodeId};

use crate::serve::BudgetState;

/// Per-query-node surviving `(pid, estimated frequency)` lists.
#[derive(Clone, Debug)]
pub struct JoinResult {
    /// `lists[q.index()]`: surviving pids of each query node.
    pub lists: Vec<Vec<(Pid, f64)>>,
}

/// Reusable allocations for [`path_join_cached`].
///
/// A join allocates one `(pid, frequency)` vector per query node; across a
/// workload that is thousands of short-lived allocations doing identical
/// work. The scratch keeps the vectors alive between joins: callers pass
/// it to [`path_join_cached`] and hand finished [`JoinResult`]s back via
/// [`recycle`](Self::recycle), after which the capacity is reused. It also
/// carries the indexed kernel's pid stamp array (an epoch-versioned
/// membership mark, so the semi-join never clears between edges).
#[derive(Debug, Default)]
pub struct JoinScratch {
    pool: Vec<Vec<(Pid, f64)>>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl JoinScratch {
    /// Creates an empty scratch pool.
    pub fn new() -> Self {
        Self::default()
    }

    fn take(&mut self) -> Vec<(Pid, f64)> {
        self.pool.pop().unwrap_or_default()
    }

    /// Returns a finished join's vectors to the pool.
    pub fn recycle(&mut self, join: JoinResult) {
        self.pool.extend(join.lists.into_iter().map(|mut v| {
            v.clear();
            v
        }));
    }

    /// Number of pooled vectors (introspection for tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// A fresh stamp epoch over `n` pid slots; slots stamped in earlier
    /// epochs read as unmarked without clearing the array.
    fn next_epoch(&mut self, n: usize) -> u32 {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.epoch
    }
}

impl JoinResult {
    /// `f_Q(n)`: the summed frequency of `n`'s surviving path ids.
    pub fn frequency(&self, n: QueryNodeId) -> f64 {
        self.lists[n.index()].iter().map(|&(_, f)| f).sum()
    }

    /// The surviving pids of `n`.
    pub fn pids(&self, n: QueryNodeId) -> impl Iterator<Item = Pid> + '_ {
        self.lists[n.index()].iter().map(|&(p, _)| p)
    }
}

/// Runs the reference path join of `query` against `summary`: fresh
/// relation masks per edge, nested-loop containment tests, all edges
/// re-swept until a pass changes nothing. Kept unoptimized on purpose —
/// it is the oracle the indexed kernel is property-tested against.
pub fn path_join(summary: &Summary, query: &Query) -> JoinResult {
    let mut lists = seed_lists(summary, query, None);

    // A `/`-rooted query pins its first step to the document root: keep
    // only ids whose paths carry the step's tag at depth 0. The reference
    // kernel re-derives this from the encoding table per pid (the shape
    // the precomputed `Summary::root_pids` index is validated against).
    if query.root_axis() == Axis::Child {
        let root_node = query.root();
        if let Some(tag) = summary.tags.get(&query.node(root_node).tag) {
            lists[root_node.index()].retain(|&(pid, _)| {
                summary
                    .pids
                    .bits(pid)
                    .ones()
                    .any(|enc| summary.encoding.path(enc).first() == Some(&tag))
            });
        } else {
            lists[root_node.index()].clear();
        }
    }

    let edges = resolve_edges(summary, query, &mut lists, None, None);

    // Nested-loop containment tests per edge, iterated to a fixpoint. The
    // loop terminates because every pass can only shrink the lists.
    loop {
        let mut changed = false;
        for edge in &edges {
            let (u_list, v_list) = two_lists(&mut lists, edge.u.index(), edge.v.index());
            let mask = &edge.mask;
            let compatible = |pu: Pid, pv: Pid| axis_compatible_masked(&summary.pids, pu, pv, mask);
            let before_u = u_list.len();
            u_list.retain(|&(pu, _)| v_list.iter().any(|&(pv, _)| compatible(pu, pv)));
            let before_v = v_list.len();
            v_list.retain(|&(pv, _)| u_list.iter().any(|&(pu, _)| compatible(pu, pv)));
            changed |= u_list.len() != before_u || v_list.len() != before_v;
        }
        if !changed {
            break;
        }
    }
    JoinResult { lists }
}

/// The indexed join kernel — [`path_join`] with memoized relation masks,
/// precomputed containment adjacency, pooled list allocations, the
/// summary's depth-0 root-pid sets, and a worklist fixpoint. Passing
/// `None` everywhere still runs the worklist schedule but resolves edges
/// through fresh masks, like the reference kernel. None of the caches
/// change the result, only the work done to produce it.
pub fn path_join_cached(
    summary: &Summary,
    query: &Query,
    masks: Option<&RelationMaskCache>,
    adjacency: Option<&JoinIndexCache>,
    scratch: Option<&mut JoinScratch>,
) -> JoinResult {
    path_join_budgeted(summary, query, masks, adjacency, scratch, None)
}

/// [`path_join_cached`] under a cooperative [`BudgetState`]: every
/// worklist edge examination charges the budget, and on exhaustion the
/// fixpoint stops where it stands. The interrupted result is a *superset*
/// of the true fixpoint (pruning only ever removes pids), so its
/// frequencies are over-estimates — callers treat any budget-exhausted
/// join as degraded and fall back to the `f(tag)` bound rather than
/// trusting the partial lists, and never publish it to a shared cache.
/// With `budget` `None` (or an unexhaustible budget) this is exactly
/// [`path_join_cached`].
pub fn path_join_budgeted(
    summary: &Summary,
    query: &Query,
    masks: Option<&RelationMaskCache>,
    adjacency: Option<&JoinIndexCache>,
    mut scratch: Option<&mut JoinScratch>,
    budget: Option<&BudgetState>,
) -> JoinResult {
    let mut lists = seed_lists(summary, query, scratch.as_deref_mut());

    // Root pinning via the summary's precomputed depth-0 pid sets — the
    // same filter the reference kernel re-derives per pid per query.
    if query.root_axis() == Axis::Child {
        let root_node = query.root();
        if let Some(tag) = summary.tags.get(&query.node(root_node).tag) {
            lists[root_node.index()]
                .retain(|&(pid, _)| summary.root_pids.pid_starts_with(tag, pid));
        } else {
            lists[root_node.index()].clear();
        }
    }

    let edges = resolve_edges(summary, query, &mut lists, masks, adjacency);

    // Worklist fixpoint: an edge is re-examined only when one of its
    // endpoint lists shrank since it was last processed. Seeded with every
    // edge; termination is bounded by total list length, since an edge is
    // only re-enqueued after a strict shrink.
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); query.len()];
    for (ei, e) in edges.iter().enumerate() {
        incident[e.u.index()].push(ei);
        incident[e.v.index()].push(ei);
    }
    let mut queued = vec![true; edges.len()];
    let mut worklist: VecDeque<usize> = (0..edges.len()).collect();
    let mut local = JoinScratch::new();
    let stamps = match scratch {
        Some(s) => s,
        None => &mut local,
    };
    while let Some(ei) = worklist.pop_front() {
        if let Some(b) = budget {
            if !b.charge_edge() {
                break;
            }
        }
        queued[ei] = false;
        let edge = &edges[ei];
        let (u_list, v_list) = two_lists(&mut lists, edge.u.index(), edge.v.index());
        let before_u = u_list.len();
        let before_v = v_list.len();
        match &edge.adj {
            Some(adj) => {
                // Semi-join over adjacency rows: mark one side's surviving
                // pids, keep the other side's pids whose row hits a mark.
                let epoch = stamps.next_epoch(summary.pids.len());
                for &(pv, _) in v_list.iter() {
                    stamps.stamp[pv.index()] = epoch;
                }
                u_list.retain(|&(pu, _)| {
                    adj.forward(pu)
                        .iter()
                        .any(|pv| stamps.stamp[pv.index()] == epoch)
                });
                let epoch = stamps.next_epoch(summary.pids.len());
                for &(pu, _) in u_list.iter() {
                    stamps.stamp[pu.index()] = epoch;
                }
                v_list.retain(|&(pv, _)| {
                    adj.reverse(pv)
                        .iter()
                        .any(|pu| stamps.stamp[pu.index()] == epoch)
                });
            }
            None => {
                let mask = &edge.mask;
                let compatible =
                    |pu: Pid, pv: Pid| axis_compatible_masked(&summary.pids, pu, pv, mask);
                u_list.retain(|&(pu, _)| v_list.iter().any(|&(pv, _)| compatible(pu, pv)));
                v_list.retain(|&(pv, _)| u_list.iter().any(|&(pu, _)| compatible(pu, pv)));
            }
        }
        // Re-enqueue neighbors of shrunk endpoints — including this edge:
        // pruning v against the already-pruned u can strand pids in u.
        for (node, before, list_len) in [
            (edge.u, before_u, lists[edge.u.index()].len()),
            (edge.v, before_v, lists[edge.v.index()].len()),
        ] {
            if list_len == before {
                continue;
            }
            for &other in &incident[node.index()] {
                if !queued[other] {
                    queued[other] = true;
                    worklist.push_back(other);
                }
            }
        }
    }
    JoinResult { lists }
}

/// Seeds each query node's candidate list from its tag's p-histogram.
fn seed_lists(
    summary: &Summary,
    query: &Query,
    mut scratch: Option<&mut JoinScratch>,
) -> Vec<Vec<(Pid, f64)>> {
    query
        .node_ids()
        .map(|q| {
            let mut list = match scratch.as_deref_mut() {
                Some(s) => s.take(),
                None => Vec::new(),
            };
            if let Some(h) = summary.phistogram(&query.node(q).tag) {
                list.extend_from_slice(h.entries_slice());
            }
            list
        })
        .collect()
}

/// One structural query edge with its resolved pruning machinery.
struct ResolvedEdge {
    u: QueryNodeId,
    v: QueryNodeId,
    mask: Arc<PathIdBits>,
    adj: Option<Arc<ContainmentAdjacency>>,
}

/// Resolves each structural edge's tags into a relation mask (and, when an
/// index cache is supplied, a containment adjacency) once — one resolution
/// serves every pid-pair test of the edge across every fixpoint step.
/// Unknown tags kill both endpoint lists outright (nothing in a shrinking
/// fixpoint can resurrect them), so such edges drop out here.
fn resolve_edges(
    summary: &Summary,
    query: &Query,
    lists: &mut [Vec<(Pid, f64)>],
    masks: Option<&RelationMaskCache>,
    adjacency: Option<&JoinIndexCache>,
) -> Vec<ResolvedEdge> {
    let mut edges = Vec::new();
    for u in query.node_ids() {
        for e in &query.node(u).edges {
            let v = e.to;
            let child = match e.axis {
                Axis::Child => true,
                Axis::Descendant => false,
                _ => unreachable!("structural edges only"),
            };
            let (Some(tag_u), Some(tag_v)) = (
                summary.tags.get(&query.node(u).tag),
                summary.tags.get(&query.node(v).tag),
            ) else {
                lists[u.index()].clear();
                lists[v.index()].clear();
                continue;
            };
            let adj = adjacency.map(|cache| summary.adjacency(cache, tag_u, tag_v, child));
            let mask = match masks {
                Some(cache) => cache.get(&summary.encoding, tag_u, tag_v, child),
                None => Arc::new(relation_mask(&summary.encoding, tag_u, tag_v, child)),
            };
            edges.push(ResolvedEdge { u, v, mask, adj });
        }
    }
    edges
}

fn two_lists<T>(v: &mut [Vec<T>], a: usize, b: usize) -> (&mut Vec<T>, &mut Vec<T>) {
    assert_ne!(a, b, "query edges never self-loop");
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_synopsis::SummaryConfig;
    use xpe_xpath::parse_query;

    fn summary() -> Summary {
        Summary::build(
            &xpe_xml::fixtures::paper_figure1(),
            SummaryConfig::default(),
        )
    }

    /// The surviving pid bit strings of a query node, sorted.
    fn pids_of(s: &Summary, j: &JoinResult, q: &Query, tag: &str) -> Vec<String> {
        let node = q
            .node_ids()
            .find(|&n| q.node(n).tag == tag)
            .expect("tag in query");
        let mut v: Vec<String> = j.pids(node).map(|p| s.pids.bits(p).to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn paper_example_4_1_join() {
        // Q1 = //A[/C/F]/B/D (Figure 3): after the join A = {p7},
        // C = {p3}, F = {p1}, B = {p5}, D = {p5}.
        let s = summary();
        let q = parse_query("//A[/C/F]/B/D").unwrap();
        let j = path_join(&s, &q);
        assert_eq!(pids_of(&s, &j, &q, "A"), vec!["1011"]); // p7
        assert_eq!(pids_of(&s, &j, &q, "C"), vec!["0011"]); // p3
        assert_eq!(pids_of(&s, &j, &q, "F"), vec!["0001"]); // p1
        assert_eq!(pids_of(&s, &j, &q, "B"), vec!["1000"]); // p5
        assert_eq!(pids_of(&s, &j, &q, "D"), vec!["1000"]); // p5
                                                            // Frequencies: f(A)=1, f(B)=3, f(D)=4 (Figure 3(b)).
        let a = q.root();
        assert_eq!(j.frequency(a), 1.0);
    }

    #[test]
    fn paper_example_4_2_simple_query() {
        // //A//C: A keeps {p6, p7}, C keeps {p2, p3}; both selectivities 2.
        let s = summary();
        let q = parse_query("//A//C").unwrap();
        let j = path_join(&s, &q);
        assert_eq!(pids_of(&s, &j, &q, "A"), vec!["1010", "1011"]); // p6, p7
        assert_eq!(pids_of(&s, &j, &q, "C"), vec!["0010", "0011"]); // p2, p3
        assert_eq!(j.frequency(q.root()), 2.0);
        assert_eq!(j.frequency(q.target()), 2.0);
    }

    #[test]
    fn paper_example_4_3_branch_overestimate() {
        // Q2 = //C[/E]/F: E keeps {(p2, 2)} — the join's known
        // over-estimate the branch formula later corrects to 1.
        let s = summary();
        let q = parse_query("//C[/$E]/F").unwrap();
        let j = path_join(&s, &q);
        assert_eq!(pids_of(&s, &j, &q, "E"), vec!["0010"]);
        assert_eq!(j.frequency(q.target()), 2.0);
        // C itself is exact: {p3} with frequency 1.
        assert_eq!(j.frequency(q.root()), 1.0);
    }

    #[test]
    fn unknown_tag_empties_the_query() {
        let s = summary();
        let q = parse_query("//A/Zebra").unwrap();
        let j = path_join(&s, &q);
        assert_eq!(j.frequency(q.root()), 0.0);
        assert_eq!(j.frequency(q.target()), 0.0);
    }

    #[test]
    fn incompatible_axis_prunes_everything() {
        // D is never a parent of A.
        let s = summary();
        let q = parse_query("//D/A").unwrap();
        let j = path_join(&s, &q);
        assert_eq!(j.frequency(q.target()), 0.0);
    }

    #[test]
    fn child_vs_descendant_pruning_differs() {
        // //Root/E: E is never a child of Root → empty.
        let s = summary();
        let child = parse_query("/Root/E").unwrap();
        assert_eq!(path_join(&s, &child).frequency(child.target()), 0.0);
        // //Root//E: all three E's survive.
        let desc = parse_query("/Root//E").unwrap();
        assert_eq!(path_join(&s, &desc).frequency(desc.target()), 3.0);
    }

    #[test]
    fn join_ignores_order_constraints() {
        let s = summary();
        let plain = parse_query("//A[/C]/B").unwrap();
        let ordered = parse_query("//A[/C/folls::$B]").unwrap();
        let jp = path_join(&s, &plain);
        let jo = path_join(&s, &ordered);
        // Same structural pruning on B regardless of the constraint.
        assert_eq!(
            pids_of(&s, &jp, &plain, "B"),
            pids_of(&s, &jo, &ordered, "B")
        );
    }

    /// Every cache/index combination of the fast kernel agrees with the
    /// reference kernel bit for bit, list for list, on every test query.
    #[test]
    fn indexed_kernel_matches_reference_on_all_shapes() {
        let s = summary();
        let queries = [
            "//A[/C/F]/B/D",
            "//A//C",
            "//C[/$E]/F",
            "//A/Zebra",
            "//D/A",
            "/Root/E",
            "/Root//E",
            "//A[/C]/B",
            "/Root/A/C/F",
            "//Root[/A]//E",
        ];
        let masks = RelationMaskCache::new();
        let index = JoinIndexCache::new();
        let mut scratch = JoinScratch::new();
        for q in queries {
            let query = parse_query(q).unwrap();
            let reference = path_join(&s, &query);
            for (m, a, use_scratch) in [
                (None, None, false),
                (Some(&masks), None, false),
                (Some(&masks), Some(&index), false),
                (Some(&masks), Some(&index), true),
                (None, Some(&index), true),
            ] {
                let fast = path_join_cached(&s, &query, m, a, use_scratch.then_some(&mut scratch));
                assert_eq!(reference.lists.len(), fast.lists.len(), "{q}");
                for (rl, fl) in reference.lists.iter().zip(&fast.lists) {
                    let rb: Vec<(Pid, u64)> = rl.iter().map(|&(p, f)| (p, f.to_bits())).collect();
                    let fb: Vec<(Pid, u64)> = fl.iter().map(|&(p, f)| (p, f.to_bits())).collect();
                    assert_eq!(rb, fb, "{q} masks={} adj={}", m.is_some(), a.is_some());
                }
                if use_scratch {
                    scratch.recycle(fast);
                }
            }
        }
    }

    #[test]
    fn stamp_epochs_survive_wraparound() {
        let mut s = JoinScratch::new();
        s.epoch = u32::MAX - 1;
        let e1 = s.next_epoch(4);
        s.stamp[0] = e1;
        let e2 = s.next_epoch(4); // wraps: stamp cleared, epoch restarts at 1
        assert_eq!(e2, 1);
        assert_ne!(s.stamp[0], e2, "stale marks never alias a fresh epoch");
    }
}
