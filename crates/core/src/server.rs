//! The network serving daemon behind `xpe serve`: a long-lived,
//! multi-threaded TCP server speaking **line-delimited JSON** (one
//! request object per line, one response object per line), std-only —
//! framing, parsing, and rendering are all hand-rolled here.
//!
//! # Protocol
//!
//! ```text
//! request  := json-object "\n"          (LF- or CRLF-terminated)
//! verbs    := {"op":"estimate","query":"//A//C"}
//!           | {"op":"stats"}
//!           | {"op":"reload"}           (re-validate + swap the summary)
//!           | {"op":"reload","path":"other.xps"}
//!           | {"op":"ping"}
//!           | {"op":"shutdown"}         (graceful drain)
//! response := {"status":"ok",...}
//!           | {"status":"degraded:<why>"|"rejected:<limit>",...}
//!           | {"status":"error","error":"<code>","detail":"..."}
//! ```
//!
//! # Robustness model
//!
//! Every layer sheds hostile input instead of stalling on it:
//!
//! * **Framing** — a per-connection line cap bounds memory, read/write
//!   timeouts bound how long a slow client can hold its *own* thread
//!   (workers never touch sockets, so a stalled writer can never wedge
//!   the pool). Oversized or truncated frames earn a typed error and a
//!   close; in-line garbage earns a typed error and the connection keeps
//!   going (garbage-then-valid pipelining works).
//! * **Backpressure** — estimates flow through a bounded
//!   [`BoundedQueue`]; when it is full the connection answers a typed
//!   `overloaded` error immediately (shed, don't stall).
//! * **Admission + budgets** — every request runs under the server's
//!   [`QueryLimits`] and [`Budget`], surfacing [`EstimateStatus`] as a
//!   compact `status` code in every response.
//! * **Panic isolation** — a worker panic is caught, answered as
//!   `degraded:panicked` with the tag-bound value on its own connection,
//!   and the worker rebuilds its estimator; other connections keep their
//!   bit-identical answers.
//! * **Hot reload** — `reload` fully validates the new `.xps` (checksum
//!   included), then atomically publishes a fresh `Generation`
//!   (summary + caches) under a bumped epoch. In-flight requests finish
//!   on the generation they started with; a failed validation leaves the
//!   old generation serving. Workers pick up the new epoch at the next
//!   job boundary.
//! * **Graceful drain** — `shutdown` stops the acceptor, closes the
//!   queue (already-admitted jobs still complete), and lets every
//!   connection thread finish; the run loop returns the lifetime tally.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

use xpe_par::{resolve_threads, BoundedQueue, PushError};
use xpe_pathid::{JoinIndexCache, RelationMaskCache};
use xpe_synopsis::Summary;
use xpe_xpath::{parse_query, Query};

use crate::serve::OutcomeTally;
use crate::{
    finalize_estimate, Budget, DegradedReason, EstimateCache, EstimateOutcome, EstimateStatus,
    Estimator, JoinCache, JoinKernel, QueryLimits, DEFAULT_ESTIMATE_CACHE_CAPACITY,
    DEFAULT_JOIN_CACHE_CAPACITY,
};

// ---------------------------------------------------------------------------
// Minimal JSON reader
// ---------------------------------------------------------------------------

/// A parsed JSON value — the minimal reader the wire protocol needs
/// (also reused by the fault harness and the serve bench's client side).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64` (`str::parse`, so a float printed with
    /// Rust's shortest-roundtrip `Display` parses back bit-identical).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as insertion-ordered pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document; trailing non-whitespace is a
    /// [`ProtocolError::BadJson`].
    pub fn parse(text: &str) -> Result<Json, ProtocolError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(bad_json(format!("trailing bytes at offset {pos}")));
        }
        Ok(value)
    }

    /// Looks up `key` when this value is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Nesting cap for the recursive-descent parser — far above anything the
/// protocol sends, low enough that hostile deep nesting cannot overflow
/// the stack.
const MAX_JSON_DEPTH: usize = 32;

fn bad_json(detail: impl Into<String>) -> ProtocolError {
    ProtocolError::BadJson {
        detail: detail.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn expect_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &'static str,
    value: Json,
) -> Result<Json, ProtocolError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(bad_json(format!("expected `{literal}` at offset {pos}")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ProtocolError> {
    if depth > MAX_JSON_DEPTH {
        return Err(bad_json("nesting too deep"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(bad_json("unexpected end of input")),
        Some(b'n') => expect_literal(bytes, pos, "null", Json::Null),
        Some(b't') => expect_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => expect_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(bad_json(format!("expected `,` or `]` at offset {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(bad_json(format!("expected `:` at offset {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(bad_json(format!("expected `,` or `}}` at offset {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ProtocolError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(bad_json(format!("expected string at offset {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(bad_json("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| bad_json("truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| bad_json("bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| bad_json("bad \\u escape"))?;
                        // Surrogate pairs and lone surrogates are refused
                        // rather than decoded — the protocol never emits
                        // them, and refusing keeps the reader total.
                        let ch = char::from_u32(code)
                            .ok_or_else(|| bad_json("\\u escape is not a scalar value"))?;
                        out.push(ch);
                        *pos += 4;
                    }
                    _ => return Err(bad_json("bad escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err(bad_json("raw control byte in string")),
            Some(_) => {
                // Copy one UTF-8 scalar; the frame was validated as UTF-8
                // before parsing, so char boundaries are intact.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| ProtocolError::InvalidUtf8)?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ProtocolError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| ProtocolError::InvalidUtf8)?;
    token
        .parse::<f64>()
        .ok()
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| bad_json(format!("bad number `{token}` at offset {start}")))
}

// ---------------------------------------------------------------------------
// Framing + request parsing
// ---------------------------------------------------------------------------

/// A wire-protocol violation. Every variant maps to a stable
/// machine-readable [`code`](Self::code) so clients (and the fault
/// harness) can assert on the class, not the prose.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// A request line exceeded the configured byte cap.
    LineTooLong {
        /// The configured cap.
        limit: usize,
    },
    /// The peer closed (or died) mid-line — bytes arrived without a
    /// terminating newline.
    TruncatedFrame {
        /// Unterminated bytes pending when the stream ended.
        bytes: usize,
    },
    /// The frame is not valid UTF-8.
    InvalidUtf8,
    /// The frame is not valid JSON.
    BadJson {
        /// What the parser tripped on.
        detail: String,
    },
    /// The frame parsed but is not a JSON object.
    NotAnObject,
    /// The request object lacks a required field.
    MissingField {
        /// The absent field.
        field: &'static str,
    },
    /// A request field has the wrong type.
    BadField {
        /// The offending field.
        field: &'static str,
    },
    /// The `op` field names no known verb.
    UnknownOp {
        /// The unrecognized verb.
        op: String,
    },
    /// The estimate request's XPath failed to parse.
    BadQuery {
        /// The XPath parser's diagnostic.
        detail: String,
    },
}

impl ProtocolError {
    /// Stable machine-readable error code, used as the `error` field of
    /// error responses.
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::LineTooLong { .. } => "protocol:line-too-long",
            ProtocolError::TruncatedFrame { .. } => "protocol:truncated",
            ProtocolError::InvalidUtf8 => "protocol:invalid-utf8",
            ProtocolError::BadJson { .. } => "protocol:bad-json",
            ProtocolError::NotAnObject => "protocol:not-an-object",
            ProtocolError::MissingField { .. } => "protocol:missing-field",
            ProtocolError::BadField { .. } => "protocol:bad-field",
            ProtocolError::UnknownOp { .. } => "protocol:unknown-op",
            ProtocolError::BadQuery { .. } => "protocol:bad-query",
        }
    }

    /// Whether the connection can keep reading frames after this error.
    /// Framing-level faults (oversized or truncated lines) leave the
    /// stream position untrustworthy, so they close; everything else was
    /// a complete, well-delimited line and the next frame may be fine.
    pub fn is_recoverable(&self) -> bool {
        !matches!(
            self,
            ProtocolError::LineTooLong { .. } | ProtocolError::TruncatedFrame { .. }
        )
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::LineTooLong { limit } => {
                write!(f, "request line exceeds {limit} bytes")
            }
            ProtocolError::TruncatedFrame { bytes } => {
                write!(f, "stream ended mid-line with {bytes} unterminated bytes")
            }
            ProtocolError::InvalidUtf8 => write!(f, "frame is not valid UTF-8"),
            ProtocolError::BadJson { detail } => write!(f, "bad JSON: {detail}"),
            ProtocolError::NotAnObject => write!(f, "request must be a JSON object"),
            ProtocolError::MissingField { field } => write!(f, "missing field `{field}`"),
            ProtocolError::BadField { field } => write!(f, "field `{field}` has the wrong type"),
            ProtocolError::UnknownOp { op } => write!(f, "unknown op `{op}`"),
            ProtocolError::BadQuery { detail } => write!(f, "bad query: {detail}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Why [`FrameReader::read_frame`] stopped: a transport error or a
/// protocol violation.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying `Read` failed (including read timeouts).
    Io(io::Error),
    /// The byte stream violated the framing rules.
    Protocol(ProtocolError),
}

/// Reads LF-delimited frames from any [`Read`] under a byte cap.
///
/// The cap bounds per-connection buffering: a peer streaming an endless
/// line is refused with [`ProtocolError::LineTooLong`] as soon as the
/// pending buffer passes the cap, long before memory matters. EOF with
/// pending bytes is a [`ProtocolError::TruncatedFrame`]; clean EOF at a
/// frame boundary is `Ok(None)`.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    pending: Vec<u8>,
    /// Bytes of `pending` already scanned for `\n`.
    scanned: usize,
    max_line: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `inner`, capping lines at `max_line` bytes (newline
    /// excluded).
    pub fn new(inner: R, max_line: usize) -> Self {
        FrameReader {
            inner,
            pending: Vec::new(),
            scanned: 0,
            max_line: max_line.max(1),
        }
    }

    /// The next complete line, without its terminator (a trailing `\r`
    /// is also stripped, so CRLF clients work). `Ok(None)` is clean EOF.
    pub fn read_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        loop {
            if let Some(at) = self.pending[self.scanned..]
                .iter()
                .position(|&b| b == b'\n')
            {
                let end = self.scanned + at;
                let mut line: Vec<u8> = self.pending.drain(..=end).collect();
                self.scanned = 0;
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Some(line));
            }
            self.scanned = self.pending.len();
            if self.pending.len() > self.max_line {
                return Err(FrameError::Protocol(ProtocolError::LineTooLong {
                    limit: self.max_line,
                }));
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    if self.pending.is_empty() {
                        return Ok(None);
                    }
                    return Err(FrameError::Protocol(ProtocolError::TruncatedFrame {
                        bytes: self.pending.len(),
                    }));
                }
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }
}

/// One decoded request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Estimate an XPath expression's selectivity.
    Estimate {
        /// The expression text (validated later by `parse_query`).
        query: String,
    },
    /// Report epoch, queue, and outcome counters.
    Stats,
    /// Validate and hot-swap the summary (`path` defaults to the one the
    /// server was started from).
    Reload {
        /// Optional `.xps` path override.
        path: Option<String>,
    },
    /// Liveness probe.
    Ping,
    /// Graceful drain.
    Shutdown,
}

/// Decodes one frame into a [`Request`] — never panics, whatever the
/// bytes (the network fault harness drives this directly).
pub fn parse_request(frame: &[u8]) -> Result<Request, ProtocolError> {
    let text = std::str::from_utf8(frame).map_err(|_| ProtocolError::InvalidUtf8)?;
    let json = Json::parse(text)?;
    if !matches!(json, Json::Obj(_)) {
        return Err(ProtocolError::NotAnObject);
    }
    let op = json
        .get("op")
        .ok_or(ProtocolError::MissingField { field: "op" })?
        .as_str()
        .ok_or(ProtocolError::BadField { field: "op" })?;
    match op {
        "estimate" => {
            let query = json
                .get("query")
                .ok_or(ProtocolError::MissingField { field: "query" })?
                .as_str()
                .ok_or(ProtocolError::BadField { field: "query" })?;
            Ok(Request::Estimate {
                query: query.to_owned(),
            })
        }
        "stats" => Ok(Request::Stats),
        "reload" => {
            let path = match json.get("path") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or(ProtocolError::BadField { field: "path" })?
                        .to_owned(),
                ),
            };
            Ok(Request::Reload { path })
        }
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtocolError::UnknownOp {
            op: other.to_owned(),
        }),
    }
}

/// Escapes `s` for embedding in a JSON string literal (mirrors the diff
/// harness's hand-rolled writer).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Server configuration and shared state
// ---------------------------------------------------------------------------

/// Tunables for one [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (0 = one per core).
    pub workers: usize,
    /// Pending estimates admitted before the server sheds with
    /// `overloaded`.
    pub queue_capacity: usize,
    /// Per-connection request-line byte cap.
    pub max_line_bytes: usize,
    /// Socket read timeout; a connection idle past it is closed with a
    /// `timeout` error (`None` waits forever).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout; a peer that stops draining responses is
    /// disconnected (`None` waits forever).
    pub write_timeout: Option<Duration>,
    /// Admission policy applied to every request.
    pub limits: QueryLimits,
    /// Resource budget applied to every request.
    pub budget: Budget,
    /// Join kernel for every generation.
    pub kernel: JoinKernel,
    /// Shared join-cache capacity per generation.
    pub join_cache_capacity: usize,
    /// Full-query estimate-cache capacity per generation (0 disables the
    /// skew-aware fast path). Each `reload` builds its generation a
    /// fresh cache, so a summary swap invalidates every published
    /// estimate atomically — in-flight jobs finish against the old
    /// generation's cache, and no stale value crosses the epoch bump.
    pub estimate_cache_capacity: usize,
    /// Chaos hook: a worker panics when an estimate's *target tag*
    /// equals this, exercising the panic-isolation path end-to-end. The
    /// integration tests and the serve bench's hostile mix use it; never
    /// set it in production.
    pub poison_tag: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_capacity: 256,
            max_line_bytes: 64 * 1024,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            limits: QueryLimits::unlimited(),
            budget: Budget::unlimited(),
            kernel: JoinKernel::default(),
            join_cache_capacity: DEFAULT_JOIN_CACHE_CAPACITY,
            estimate_cache_capacity: DEFAULT_ESTIMATE_CACHE_CAPACITY,
            poison_tag: None,
        }
    }
}

/// One immutable serving generation: a summary plus the kernel caches
/// built over it. `reload` publishes a fresh generation under a bumped
/// epoch; requests already handed to a worker finish on the generation
/// they started with (the worker holds its `Arc`), so a swap is never
/// torn.
#[derive(Debug)]
struct Generation {
    epoch: u64,
    summary: Arc<Summary>,
    masks: Arc<RelationMaskCache>,
    adjacency: Arc<JoinIndexCache>,
    join_cache: Arc<JoinCache>,
    /// Full-query estimate cache of this generation. Owned by the
    /// generation so reload's swap invalidates it atomically: workers on
    /// the new generation start from a cold cache built over the new
    /// summary, while in-flight jobs keep hitting the old one.
    estimate_cache: Arc<EstimateCache>,
    kernel: JoinKernel,
}

impl Generation {
    fn new(
        summary: Arc<Summary>,
        epoch: u64,
        kernel: JoinKernel,
        join_cache_capacity: usize,
        estimate_cache_capacity: usize,
    ) -> Self {
        Generation {
            epoch,
            summary,
            masks: Arc::new(RelationMaskCache::new()),
            adjacency: Arc::new(JoinIndexCache::new()),
            join_cache: Arc::new(JoinCache::with_capacity(join_cache_capacity)),
            estimate_cache: Arc::new(EstimateCache::with_capacity(estimate_cache_capacity)),
            kernel,
        }
    }

    /// A fresh estimator borrowing this generation's summary and sharing
    /// its caches — one per worker per generation.
    fn estimator(&self) -> Estimator<'_> {
        Estimator::with_caches(
            &self.summary,
            Arc::clone(&self.masks),
            Arc::clone(&self.adjacency),
            Some(Arc::clone(&self.join_cache)),
        )
        .with_estimate_cache(Some(Arc::clone(&self.estimate_cache)))
        .with_kernel(self.kernel)
    }
}

/// Process-lifetime counters (atomics; the per-connection tally is a
/// plain [`OutcomeTally`] local to its thread).
#[derive(Debug, Default)]
struct LifetimeCounters {
    ok: AtomicU64,
    degraded: AtomicU64,
    rejected: AtomicU64,
    protocol_errors: AtomicU64,
    timeouts: AtomicU64,
    overloaded: AtomicU64,
    panics: AtomicU64,
    connections: AtomicU64,
}

impl LifetimeCounters {
    fn record_status(&self, status: &EstimateStatus) {
        match status {
            EstimateStatus::Ok => self.ok.fetch_add(1, Ordering::Relaxed),
            EstimateStatus::Degraded { reason } => {
                if matches!(reason, DegradedReason::Panicked { .. }) {
                    self.panics.fetch_add(1, Ordering::Relaxed);
                }
                self.degraded.fetch_add(1, Ordering::Relaxed)
            }
            EstimateStatus::Rejected { .. } => self.rejected.fetch_add(1, Ordering::Relaxed),
        };
    }

    fn snapshot(&self) -> OutcomeTally {
        OutcomeTally {
            ok: self.ok.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
        }
    }
}

/// What a worker sends back for one job.
struct WorkerReply {
    outcome: EstimateOutcome,
    /// Epoch of the generation that served the estimate.
    epoch: u64,
}

/// One queued estimate.
struct Job {
    query: Query,
    reply: mpsc::SyncSender<WorkerReply>,
}

/// State shared by the acceptor, every connection thread, and every
/// worker.
struct SharedState {
    /// The serving generation; the mutex guards publication only —
    /// readers clone the `Arc` out and drop the lock immediately
    /// (mirroring `JoinIndexCache`).
    generation: Mutex<Arc<Generation>>,
    /// Epoch of the published generation; workers revalidate with one
    /// atomic load per job.
    epoch: AtomicU64,
    /// Serializes `reload` requests (validation runs outside the
    /// generation mutex; this only keeps concurrent reloads ordered).
    reload_lock: Mutex<()>,
    queue: BoundedQueue<Job>,
    counters: LifetimeCounters,
    limits: QueryLimits,
    budget: Budget,
    shutting_down: AtomicBool,
    config: ServerConfig,
    /// Where the boot summary came from; `reload` without a path re-reads
    /// this.
    summary_path: Option<PathBuf>,
    /// The bound address, used to self-connect and unblock `accept` on
    /// shutdown.
    addr: SocketAddr,
}

impl SharedState {
    fn generation(&self) -> Arc<Generation> {
        Arc::clone(
            &self
                .generation
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn publish(&self, generation: Generation) {
        let epoch = generation.epoch;
        let mut slot = self
            .generation
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *slot = Arc::new(generation);
        self.epoch.store(epoch, Ordering::Release);
    }

    fn shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }

    /// Flips the drain flag, closes the queue (admitted jobs still
    /// complete), and pokes the acceptor awake with a throwaway
    /// self-connection.
    fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
        self.queue.close();
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

// ---------------------------------------------------------------------------
// Response rendering
// ---------------------------------------------------------------------------

fn error_response(code: &str, detail: &str) -> String {
    format!(
        "{{\"status\":\"error\",\"error\":\"{}\",\"detail\":\"{}\"}}",
        json_escape(code),
        json_escape(detail)
    )
}

fn protocol_error_response(err: &ProtocolError) -> String {
    error_response(err.code(), &err.to_string())
}

fn estimate_response(reply: &WorkerReply) -> String {
    let code = reply.outcome.status.code();
    let mut out = format!(
        "{{\"status\":\"{}\",\"estimate\":{},\"epoch\":{}",
        code, reply.outcome.value, reply.epoch
    );
    if !reply.outcome.status.is_ok() {
        out.push_str(&format!(
            ",\"detail\":\"{}\"",
            json_escape(&reply.outcome.status.to_string())
        ));
    }
    out.push('}');
    out
}

fn stats_response(state: &SharedState, connection: &OutcomeTally) -> String {
    let mut out = format!(
        "{{\"status\":\"ok\",\"epoch\":{},\"workers\":{},\"queue_capacity\":{},\
         \"queue_depth\":{},\"connections\":{},\"lifetime\":",
        state.epoch(),
        resolve_threads(state.config.workers),
        state.queue.capacity(),
        state.queue.len(),
        state.counters.connections.load(Ordering::Relaxed),
    );
    state.counters.snapshot().write_json(&mut out);
    out.push_str(",\"connection\":");
    connection.write_json(&mut out);
    // Cache counters of the *current* generation — a reload swaps in
    // fresh (cold) caches, so these reset at each epoch bump. Workers
    // fold their tally-local hit/miss counts into these shared atomics
    // after every job, so the rates trail in-flight requests by at most
    // one job per worker.
    let generation = state.generation();
    let est = &generation.estimate_cache;
    let join = &generation.join_cache;
    out.push_str(&format!(
        ",\"caches\":{{\"estimate\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.6},\
         \"inserts\":{},\"invalidations\":{},\"len\":{},\"capacity\":{}}},\
         \"join\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.6},\"capacity\":{}}}}}",
        est.hits(),
        est.misses(),
        est.hit_rate(),
        est.inserts(),
        est.invalidations(),
        est.len(),
        est.capacity(),
        join.hits(),
        join.misses(),
        join.hit_rate(),
        join.capacity(),
    ));
    out.push('}');
    out
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// The degraded reply for a job whose estimate panicked: the same
/// `finalize_estimate(f(tag), f(tag))` clamp every degraded answer uses.
fn panic_reply(generation: &Generation, query: &Query, message: String) -> WorkerReply {
    let cap = generation
        .summary
        .tag_total(&query.node(query.target()).tag);
    WorkerReply {
        outcome: EstimateOutcome {
            value: finalize_estimate(cap, cap),
            status: EstimateStatus::Degraded {
                reason: DegradedReason::Panicked { message },
            },
        },
        epoch: generation.epoch,
    }
}

fn worker_loop(state: &SharedState) {
    // A job popped under a stale generation is carried into the next
    // generation's scope instead of being re-queued (which would
    // reorder) or answered stale (which would serve the old summary to a
    // post-reload request).
    let mut carried: Option<Job> = None;
    'generation: loop {
        let generation = state.generation();
        let estimator = generation.estimator();
        loop {
            let job = match carried.take().or_else(|| state.queue.pop()) {
                Some(job) => job,
                None => {
                    // Closed and drained: flush warm entries and exit.
                    estimator.flush_caches();
                    return;
                }
            };
            if state.epoch() != generation.epoch {
                estimator.flush_caches();
                carried = Some(job);
                continue 'generation;
            }
            if let Some(poison) = &state.config.poison_tag {
                if &job.query.node(job.query.target()).tag == poison {
                    let reply = panic_reply(&generation, &job.query, "poisoned query".to_owned());
                    state.counters.record_status(&reply.outcome.status);
                    let _ = job.reply.send(reply);
                    continue;
                }
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                estimator.try_estimate(&job.query, &state.limits, &state.budget)
            }));
            // Fold this worker's local cache tallies into the shared
            // counters after every job so the `stats` verb reads live
            // hit rates, not drain-time snapshots. A handful of relaxed
            // atomic adds per request — noise next to the socket work —
            // and the estimate hot path itself stays tally-local.
            estimator.flush_caches();
            match outcome {
                Ok(outcome) => {
                    state.counters.record_status(&outcome.status);
                    let _ = job.reply.send(WorkerReply {
                        outcome,
                        epoch: generation.epoch,
                    });
                }
                Err(payload) => {
                    // The estimator's scratch may be poisoned mid-join:
                    // answer from the summary's tag bound and rebuild the
                    // estimator before touching the next job.
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_owned());
                    let reply = panic_reply(&generation, &job.query, message);
                    state.counters.record_status(&reply.outcome.status);
                    let _ = job.reply.send(reply);
                    continue 'generation;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Writes one response line; a timeout or error here means the peer
/// stopped draining and the connection is abandoned.
fn write_line(stream: &mut TcpStream, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Outcome of serving one request; `Close` ends the connection loop.
enum Served {
    Continue,
    Close,
}

fn handle_estimate(
    state: &Arc<SharedState>,
    stream: &mut TcpStream,
    tally: &mut OutcomeTally,
    query_text: &str,
) -> io::Result<Served> {
    let query = match parse_query(query_text) {
        Ok(q) => q,
        Err(e) => {
            tally.protocol_errors += 1;
            state
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            let err = ProtocolError::BadQuery {
                detail: e.to_string(),
            };
            write_line(stream, &protocol_error_response(&err))?;
            return Ok(Served::Continue);
        }
    };
    let (sender, receiver) = mpsc::sync_channel(1);
    match state.queue.try_push(Job {
        query,
        reply: sender,
    }) {
        Ok(()) => match receiver.recv() {
            Ok(reply) => {
                tally.record(&reply.outcome.status);
                write_line(stream, &estimate_response(&reply))?;
                Ok(Served::Continue)
            }
            Err(_) => {
                // The worker pool dropped the job without replying —
                // only possible once the queue closed mid-drain.
                write_line(
                    stream,
                    &error_response("shutting-down", "server is draining"),
                )?;
                Ok(Served::Close)
            }
        },
        Err(PushError::Full(_)) => {
            tally.overloaded += 1;
            state.counters.overloaded.fetch_add(1, Ordering::Relaxed);
            write_line(
                stream,
                &error_response("overloaded", "worker queue is full; retry later"),
            )?;
            Ok(Served::Continue)
        }
        Err(PushError::Closed(_)) => {
            write_line(
                stream,
                &error_response("shutting-down", "server is draining"),
            )?;
            Ok(Served::Close)
        }
    }
}

/// Validates and hot-swaps the summary. Runs on the connection thread —
/// reload is rare and control-plane; estimate traffic keeps flowing
/// through the workers on the old generation until the new one is
/// published.
fn handle_reload(state: &SharedState, path_override: Option<String>) -> String {
    let _serialized = state
        .reload_lock
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let path = match path_override
        .map(PathBuf::from)
        .or_else(|| state.summary_path.clone())
    {
        Some(p) => p,
        None => {
            return error_response(
                "reload-failed",
                "no summary path: server was started from memory and the \
                 request named no `path`",
            )
        }
    };
    // Full validation — wire format and checksum — happens here, before
    // anything is published. A failure leaves the old generation serving.
    let summary = match Summary::load_from_file(&path) {
        Ok(s) => s,
        Err(e) => {
            return error_response("reload-failed", &format!("{}: {e}", path.display()));
        }
    };
    let epoch = state.epoch() + 1;
    let generation = Generation::new(
        Arc::new(summary),
        epoch,
        state.config.kernel,
        state.config.join_cache_capacity,
        state.config.estimate_cache_capacity,
    );
    let (paths, pids, tags) = (
        generation.summary.encoding.len(),
        generation.summary.pids.len(),
        generation.summary.tags.len(),
    );
    state.publish(generation);
    format!(
        "{{\"status\":\"ok\",\"reloaded\":true,\"epoch\":{epoch},\
         \"paths\":{paths},\"pids\":{pids},\"tags\":{tags}}}"
    )
}

fn handle_connection(mut stream: TcpStream, state: &Arc<SharedState>) {
    state.counters.connections.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_read_timeout(state.config.read_timeout);
    let _ = stream.set_write_timeout(state.config.write_timeout);
    let _ = stream.set_nodelay(true);
    let reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut frames = FrameReader::new(reader, state.config.max_line_bytes);
    let mut tally = OutcomeTally::default();
    loop {
        if state.shutting_down() {
            let _ = write_line(
                &mut stream,
                &error_response("shutting-down", "server is draining"),
            );
            return;
        }
        let frame = match frames.read_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean close
            Err(FrameError::Io(e)) if is_timeout(&e) => {
                // Only the lifetime counter: the connection closes here,
                // so its local tally can never be read again.
                state.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                let _ = write_line(
                    &mut stream,
                    &error_response("timeout", "read timed out; closing connection"),
                );
                return;
            }
            Err(FrameError::Io(_)) => return, // peer vanished
            Err(FrameError::Protocol(err)) => {
                tally.protocol_errors += 1;
                state
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = write_line(&mut stream, &protocol_error_response(&err));
                if err.is_recoverable() {
                    continue;
                }
                return;
            }
        };
        if frame.is_empty() {
            continue; // blank keep-alive lines are free
        }
        let request = match parse_request(&frame) {
            Ok(request) => request,
            Err(err) => {
                tally.protocol_errors += 1;
                state
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let write = write_line(&mut stream, &protocol_error_response(&err));
                if write.is_err() || !err.is_recoverable() {
                    return;
                }
                continue;
            }
        };
        let served = match request {
            Request::Ping => write_line(&mut stream, "{\"status\":\"ok\",\"pong\":true}")
                .map(|_| Served::Continue),
            Request::Stats => {
                write_line(&mut stream, &stats_response(state, &tally)).map(|_| Served::Continue)
            }
            Request::Estimate { query } => handle_estimate(state, &mut stream, &mut tally, &query),
            Request::Reload { path } => {
                write_line(&mut stream, &handle_reload(state, path)).map(|_| Served::Continue)
            }
            Request::Shutdown => {
                let _ = write_line(&mut stream, "{\"status\":\"ok\",\"shutting_down\":true}");
                state.begin_shutdown();
                return;
            }
        };
        match served {
            Ok(Served::Continue) => {}
            Ok(Served::Close) => return,
            Err(e) => {
                if is_timeout(&e) {
                    state.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// A bound-but-not-yet-running estimation daemon. [`bind`](Self::bind)
/// reserves the port (so callers can learn an ephemeral address before
/// spawning clients); [`run`](Self::run) blocks serving until a
/// `shutdown` verb drains it.
pub struct Server {
    listener: TcpListener,
    state: Arc<SharedState>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// prepares the first serving generation from `summary`.
    /// `summary_path` is what a path-less `reload` re-reads.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        summary: Arc<Summary>,
        summary_path: Option<PathBuf>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let generation = Generation::new(
            summary,
            1,
            config.kernel,
            config.join_cache_capacity,
            config.estimate_cache_capacity,
        );
        let state = Arc::new(SharedState {
            generation: Mutex::new(Arc::new(generation)),
            epoch: AtomicU64::new(1),
            reload_lock: Mutex::new(()),
            queue: BoundedQueue::new(config.queue_capacity),
            counters: LifetimeCounters::default(),
            limits: config.limits,
            budget: config.budget,
            shutting_down: AtomicBool::new(false),
            summary_path,
            addr: local,
            config,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until a `shutdown` verb arrives, then drains: the acceptor
    /// stops, admitted jobs complete, every connection thread exits, and
    /// the process-lifetime tally is returned.
    pub fn run(self) -> OutcomeTally {
        let state = &self.state;
        let workers = resolve_threads(state.config.workers);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| worker_loop(state));
            }
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if state.shutting_down() {
                            break; // the begin_shutdown self-connect
                        }
                        scope.spawn(|| handle_connection(stream, state));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        if state.shutting_down() {
                            break;
                        }
                    }
                }
                if state.shutting_down() {
                    break;
                }
            }
            // Idempotent with begin_shutdown; also covers an acceptor
            // that exits on a listener error.
            state.queue.close();
        });
        state.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use xpe_synopsis::SummaryConfig;

    fn summary() -> Arc<Summary> {
        Arc::new(Summary::build(
            &xpe_xml::fixtures::paper_figure1(),
            SummaryConfig::default(),
        ))
    }

    fn test_config() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 32,
            read_timeout: Some(Duration::from_millis(500)),
            write_timeout: Some(Duration::from_millis(500)),
            ..ServerConfig::default()
        }
    }

    /// A client speaking one line at a time.
    struct Client {
        stream: TcpStream,
        reader: std::io::BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let reader = std::io::BufReader::new(stream.try_clone().unwrap());
            Client { stream, reader }
        }

        fn send_raw(&mut self, bytes: &[u8]) {
            self.stream.write_all(bytes).expect("write");
        }

        fn roundtrip(&mut self, line: &str) -> Json {
            self.send_raw(line.as_bytes());
            self.send_raw(b"\n");
            self.read_response()
        }

        fn read_response(&mut self) -> Json {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read");
            Json::parse(line.trim_end()).expect("response is JSON")
        }
    }

    fn spawn_server(
        config: ServerConfig,
    ) -> (
        SocketAddr,
        Arc<SharedState>,
        std::thread::JoinHandle<OutcomeTally>,
    ) {
        let server = Server::bind("127.0.0.1:0", summary(), None, config).expect("bind");
        let addr = server.local_addr();
        let state = Arc::clone(&server.state);
        let handle = std::thread::spawn(move || server.run());
        (addr, state, handle)
    }

    fn shutdown(addr: SocketAddr) {
        let mut c = Client::connect(addr);
        let resp = c.roundtrip("{\"op\":\"shutdown\"}");
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    }

    // -- JSON reader ---------------------------------------------------

    #[test]
    fn json_parses_scalars_and_structures() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -2.5e1 ").unwrap(), Json::Num(-25.0));
        assert_eq!(
            Json::parse("\"a\\n\\u0041\"").unwrap(),
            Json::Str("a\nA".to_owned())
        );
        let obj = Json::parse("{\"a\": [1, {\"b\": false}], \"c\": \"x\"}").unwrap();
        assert_eq!(obj.get("c").and_then(Json::as_str), Some("x"));
        match obj.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items[0], Json::Num(1.0));
                assert_eq!(items[1].get("b").and_then(Json::as_bool), Some(false));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn json_refuses_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "nul",
            "\"unterminated",
            "{\"a\":1} trailing",
            "1e999",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
        // Hostile nesting is refused, not stack-overflowed.
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn json_floats_roundtrip_bit_identical() {
        for v in [0.0f64, 2.0, 1.0 / 3.0, 1e-300, 123456.789e12] {
            let text = format!("{v}");
            match Json::parse(&text).unwrap() {
                Json::Num(parsed) => assert_eq!(parsed.to_bits(), v.to_bits(), "{text}"),
                other => panic!("{other:?}"),
            }
        }
    }

    // -- framing -------------------------------------------------------

    #[test]
    fn frame_reader_splits_lines_and_handles_crlf() {
        let data: &[u8] = b"one\r\ntwo\nthree\n";
        let mut r = FrameReader::new(data, 1024);
        assert_eq!(r.read_frame().unwrap(), Some(b"one".to_vec()));
        assert_eq!(r.read_frame().unwrap(), Some(b"two".to_vec()));
        assert_eq!(r.read_frame().unwrap(), Some(b"three".to_vec()));
        assert_eq!(r.read_frame().unwrap(), None);
    }

    #[test]
    fn frame_reader_caps_line_length() {
        let long = vec![b'x'; 5000];
        let mut r = FrameReader::new(&long[..], 64);
        match r.read_frame() {
            Err(FrameError::Protocol(ProtocolError::LineTooLong { limit: 64 })) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frame_reader_reports_truncation() {
        let data: &[u8] = b"{\"op\":\"esti";
        let mut r = FrameReader::new(data, 1024);
        match r.read_frame() {
            Err(FrameError::Protocol(ProtocolError::TruncatedFrame { bytes: 11 })) => {}
            other => panic!("{other:?}"),
        }
    }

    // -- request parsing ----------------------------------------------

    #[test]
    fn parse_request_decodes_every_verb() {
        assert_eq!(
            parse_request(b"{\"op\":\"estimate\",\"query\":\"//A//C\"}").unwrap(),
            Request::Estimate {
                query: "//A//C".to_owned()
            }
        );
        assert_eq!(
            parse_request(b"{\"op\":\"stats\"}").unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request(b"{\"op\":\"reload\"}").unwrap(),
            Request::Reload { path: None }
        );
        assert_eq!(
            parse_request(b"{\"op\":\"reload\",\"path\":\"x.xps\"}").unwrap(),
            Request::Reload {
                path: Some("x.xps".to_owned())
            }
        );
        assert_eq!(parse_request(b"{\"op\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(
            parse_request(b"{\"op\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn parse_request_errors_are_typed() {
        assert_eq!(parse_request(b"\xff\xfe"), Err(ProtocolError::InvalidUtf8));
        assert!(matches!(
            parse_request(b"!!garbage"),
            Err(ProtocolError::BadJson { .. })
        ));
        assert_eq!(parse_request(b"[1,2]"), Err(ProtocolError::NotAnObject));
        assert_eq!(
            parse_request(b"{}"),
            Err(ProtocolError::MissingField { field: "op" })
        );
        assert_eq!(
            parse_request(b"{\"op\":7}"),
            Err(ProtocolError::BadField { field: "op" })
        );
        assert_eq!(
            parse_request(b"{\"op\":\"estimate\"}"),
            Err(ProtocolError::MissingField { field: "query" })
        );
        assert_eq!(
            parse_request(b"{\"op\":\"warp\"}"),
            Err(ProtocolError::UnknownOp {
                op: "warp".to_owned()
            })
        );
        // Codes are distinct and space-free (safe in raw JSON).
        let codes: Vec<&str> = [
            ProtocolError::InvalidUtf8.code(),
            ProtocolError::NotAnObject.code(),
            ProtocolError::LineTooLong { limit: 1 }.code(),
            ProtocolError::TruncatedFrame { bytes: 1 }.code(),
            ProtocolError::BadJson {
                detail: String::new(),
            }
            .code(),
            ProtocolError::MissingField { field: "x" }.code(),
            ProtocolError::BadField { field: "x" }.code(),
            ProtocolError::UnknownOp { op: String::new() }.code(),
            ProtocolError::BadQuery {
                detail: String::new(),
            }
            .code(),
        ]
        .to_vec();
        for (i, a) in codes.iter().enumerate() {
            assert!(!a.contains(' '));
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    // -- shed-don't-stall ----------------------------------------------

    #[test]
    fn full_queue_sheds_with_typed_overloaded_error() {
        // No workers drain this state's queue; fill it by hand and push
        // one estimate through the connection-level handler via a real
        // socketpair.
        let server = Server::bind(
            "127.0.0.1:0",
            summary(),
            None,
            ServerConfig {
                queue_capacity: 1,
                ..test_config()
            },
        )
        .expect("bind");
        let state = Arc::clone(&server.state);
        let (sender, _receiver) = mpsc::sync_channel(1);
        assert!(state
            .queue
            .try_push(Job {
                query: parse_query("//A").unwrap(),
                reply: sender,
            })
            .is_ok());
        // Queue now full. Serve one connection by hand (no run loop).
        let listener = server.listener;
        let addr = state.addr;
        let accepted = std::thread::spawn(move || listener.accept().unwrap().0);
        let mut client = Client::connect(addr);
        let conn = accepted.join().unwrap();
        let state_for_conn = Arc::clone(&state);
        let server_side = std::thread::spawn(move || handle_connection(conn, &state_for_conn));
        let resp = client.roundtrip("{\"op\":\"estimate\",\"query\":\"//A//C\"}");
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(resp.get("error").and_then(Json::as_str), Some("overloaded"));
        drop(client);
        server_side.join().unwrap();
        assert_eq!(state.counters.snapshot().overloaded, 1);
    }

    // -- end-to-end over a live socket ---------------------------------

    #[test]
    fn serves_estimates_bit_identical_to_direct_calls() {
        let s = summary();
        let direct = Estimator::new(&s);
        let (addr, _state, handle) = spawn_server(test_config());
        let mut client = Client::connect(addr);
        for q in ["//A//C", "//A[/C/F]/B/D", "//A[/C[/F]/folls::$B/D]"] {
            let resp = client.roundtrip(&format!("{{\"op\":\"estimate\",\"query\":\"{q}\"}}"));
            assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"), "{q}");
            let served = resp.get("estimate").and_then(Json::as_f64).unwrap();
            let expected = direct.estimate(&parse_query(q).unwrap());
            assert_eq!(served.to_bits(), expected.to_bits(), "{q}");
            assert_eq!(resp.get("epoch").and_then(Json::as_f64), Some(1.0));
        }
        // Ping and stats verbs answer on the same connection.
        let pong = client.roundtrip("{\"op\":\"ping\"}");
        assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
        let stats = client.roundtrip("{\"op\":\"stats\"}");
        assert_eq!(
            stats
                .get("lifetime")
                .and_then(|l| l.get("ok"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            stats
                .get("connection")
                .and_then(|l| l.get("ok"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        drop(client);
        shutdown(addr);
        let tally = handle.join().unwrap();
        assert_eq!(tally.ok, 3);
        assert_eq!(tally.protocol_errors, 0);
    }

    #[test]
    fn garbage_then_valid_pipelining_keeps_the_connection() {
        let (addr, _state, handle) = spawn_server(test_config());
        let mut client = Client::connect(addr);
        let resp = client.roundtrip("!!not json at all");
        assert_eq!(
            resp.get("error").and_then(Json::as_str),
            Some("protocol:bad-json")
        );
        let resp = client.roundtrip("{\"op\":\"estimate\",\"query\":\"//A//\"}");
        assert_eq!(
            resp.get("error").and_then(Json::as_str),
            Some("protocol:bad-query")
        );
        let resp = client.roundtrip("{\"op\":\"nope\"}");
        assert_eq!(
            resp.get("error").and_then(Json::as_str),
            Some("protocol:unknown-op")
        );
        // The same connection still serves real queries afterwards.
        let resp = client.roundtrip("{\"op\":\"estimate\",\"query\":\"//A//C\"}");
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        drop(client);
        shutdown(addr);
        let tally = handle.join().unwrap();
        assert_eq!(tally.protocol_errors, 3);
        assert_eq!(tally.ok, 1);
    }

    #[test]
    fn oversized_line_earns_typed_error_and_close() {
        let (addr, _state, handle) = spawn_server(ServerConfig {
            max_line_bytes: 128,
            ..test_config()
        });
        let mut client = Client::connect(addr);
        client.send_raw(&vec![b'z'; 4096]);
        let resp = client.read_response();
        assert_eq!(
            resp.get("error").and_then(Json::as_str),
            Some("protocol:line-too-long")
        );
        // The server closed the connection afterwards.
        let mut line = String::new();
        assert_eq!(client.reader.read_line(&mut line).unwrap(), 0);
        drop(client);
        shutdown(addr);
        assert_eq!(handle.join().unwrap().protocol_errors, 1);
    }

    #[test]
    fn admission_and_budget_surface_as_status_codes() {
        let (addr, _state, handle) = spawn_server(ServerConfig {
            limits: QueryLimits {
                max_nodes: Some(2),
                ..QueryLimits::unlimited()
            },
            budget: Budget {
                deadline: Some(Duration::ZERO),
                max_join_edges: None,
            },
            ..test_config()
        });
        let mut client = Client::connect(addr);
        let resp = client.roundtrip("{\"op\":\"estimate\",\"query\":\"//A/C/F\"}");
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("rejected:nodes")
        );
        let resp = client.roundtrip("{\"op\":\"estimate\",\"query\":\"//A//C\"}");
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("degraded:deadline")
        );
        // Degraded values stay inside [0, f(tag)].
        let v = resp.get("estimate").and_then(Json::as_f64).unwrap();
        assert!(v >= 0.0 && v.is_finite());
        drop(client);
        shutdown(addr);
        let tally = handle.join().unwrap();
        assert_eq!((tally.rejected, tally.degraded), (1, 1));
    }

    #[test]
    fn poisoned_query_degrades_alone_others_stay_bit_identical() {
        let s = summary();
        let direct = Estimator::new(&s);
        let (addr, _state, handle) = spawn_server(ServerConfig {
            poison_tag: Some("F".to_owned()),
            ..test_config()
        });
        let mut healthy = Client::connect(addr);
        let mut victim = Client::connect(addr);
        let resp = victim.roundtrip("{\"op\":\"estimate\",\"query\":\"//C/F\"}");
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("degraded:panicked")
        );
        let expected = direct.estimate(&parse_query("//A//C").unwrap());
        for _ in 0..3 {
            let resp = healthy.roundtrip("{\"op\":\"estimate\",\"query\":\"//A//C\"}");
            assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
            let v = resp.get("estimate").and_then(Json::as_f64).unwrap();
            assert_eq!(v.to_bits(), expected.to_bits());
        }
        drop(healthy);
        drop(victim);
        shutdown(addr);
        let tally = handle.join().unwrap();
        assert_eq!(tally.panics, 1);
        assert_eq!(tally.ok, 3);
    }

    #[test]
    fn reload_swaps_generations_and_failed_reload_keeps_serving() {
        let dir = std::env::temp_dir().join(format!("xpe-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reload.xps");
        std::fs::write(&path, summary().to_bytes()).unwrap();
        let (addr, state, handle) = spawn_server(test_config());
        let mut client = Client::connect(addr);
        // Path-less reload fails (server started from memory)…
        let resp = client.roundtrip("{\"op\":\"reload\"}");
        assert_eq!(
            resp.get("error").and_then(Json::as_str),
            Some("reload-failed")
        );
        assert_eq!(state.epoch(), 1);
        // …an explicit valid path swaps the generation…
        let resp = client.roundtrip(&format!(
            "{{\"op\":\"reload\",\"path\":\"{}\"}}",
            json_escape(path.to_str().unwrap())
        ));
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(resp.get("epoch").and_then(Json::as_f64), Some(2.0));
        assert_eq!(state.epoch(), 2);
        // …and estimates now report the new epoch with identical values.
        let resp = client.roundtrip("{\"op\":\"estimate\",\"query\":\"//A//C\"}");
        assert_eq!(resp.get("epoch").and_then(Json::as_f64), Some(2.0));
        assert_eq!(resp.get("estimate").and_then(Json::as_f64), Some(2.0));
        // A corrupt file is fully validated and refused; epoch holds.
        let bad = dir.join("corrupt.xps");
        let mut bytes = summary().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&bad, bytes).unwrap();
        let resp = client.roundtrip(&format!(
            "{{\"op\":\"reload\",\"path\":\"{}\"}}",
            json_escape(bad.to_str().unwrap())
        ));
        assert_eq!(
            resp.get("error").and_then(Json::as_str),
            Some("reload-failed")
        );
        assert_eq!(state.epoch(), 2);
        let resp = client.roundtrip("{\"op\":\"estimate\",\"query\":\"//A//C\"}");
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(resp.get("epoch").and_then(Json::as_f64), Some(2.0));
        drop(client);
        shutdown(addr);
        handle.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_identical_cold_queries_build_each_join_index_once() {
        // Regression for the ROADMAP-item-3 note: under the server's
        // worker pool, racing cold misses on the same adjacency key must
        // coalesce on the per-key in-flight guard instead of building
        // duplicates.
        let (addr, state, handle) = spawn_server(ServerConfig {
            workers: 4,
            ..test_config()
        });
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    for _ in 0..4 {
                        let resp = client.roundtrip("{\"op\":\"estimate\",\"query\":\"//A//C\"}");
                        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
                    }
                });
            }
        });
        let adjacency = state.generation().adjacency.clone();
        assert_eq!(
            adjacency.build_attempts(),
            adjacency.builds(),
            "duplicate cold builds ran despite the in-flight guard"
        );
        shutdown(addr);
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_drains_and_refuses_new_connections() {
        let (addr, state, handle) = spawn_server(test_config());
        let mut client = Client::connect(addr);
        let resp = client.roundtrip("{\"op\":\"estimate\",\"query\":\"//A//C\"}");
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        let resp = client.roundtrip("{\"op\":\"shutdown\"}");
        assert_eq!(
            resp.get("shutting_down").and_then(Json::as_bool),
            Some(true)
        );
        drop(client);
        let tally = handle.join().unwrap();
        assert!(state.queue.is_closed());
        assert_eq!(tally.ok, 1);
        // The port is released — a fresh bind on the same address works.
        assert!(TcpListener::bind(addr).is_ok());
    }
}
