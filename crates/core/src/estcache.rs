//! Full-query estimate memoization — the skew-aware fast path.
//!
//! Production estimation traffic is heavily skewed: a handful of query
//! templates dominate arrivals. The [`JoinCache`](crate::JoinCache) is
//! *skeleton*-keyed (order constraints and the target node deliberately
//! excluded), so a repeated query still pays plan lookup, join-cache
//! probe, and the full finalize/order-ratio phases on every arrival.
//! [`EstimateCache`] memoizes the **finished estimate** above all of
//! that, keyed by the *complete* canonical query — tags, structural
//! edges, order constraints, and target — so the second arrival of a hot
//! template is one hash probe.
//!
//! # Key construction
//!
//! The key is the query's canonical text ([`Query`]'s `Display`
//! rendering — the same normalizer the workload generator uses for
//! deduplication), with its 64-bit hash computed once at construction;
//! shard-free map probes reuse it through the pass-through
//! [`PrehashedHasher`]. Canonicalization means surface variants of one
//! query (`pres::` vs the `folls::` orientation, redundant `$` markers)
//! collapse into one entry, while order-constraint variants that share a
//! *skeleton* — and therefore share a join-cache entry — still get
//! distinct estimate entries, because the canonical text renders their
//! constraints and targets.
//!
//! # Publication: the epoch/`Arc`-snapshot pattern
//!
//! Reads go through an immutable [`EstimateSnapshot`]: a reader holds
//! one `Arc` per observed epoch (see [`EstimateCacheReader`]),
//! revalidates it with a single atomic acquire load, and probes
//! lock-free until the epoch moves. The mutex guards publication only: a
//! miss computes its estimate outside any lock, then clones the current
//! segment, inserts, swaps the `Arc`, and bumps the epoch
//! (first-publication-wins — racing inserts of one key keep the first
//! value, which is safe because estimates are pure functions of
//! `(summary, canonical query)`). Warm hits therefore take **zero
//! locks**, which `kernel_stats()`'s debug lock counter asserts.
//!
//! # Bounded capacity without a lockable LRU
//!
//! Recency tracking is impossible on a lock-free read path, so the cache
//! bounds memory with two immutable segments instead: inserts go to
//! `current` (cloned copy-on-write, at most half the capacity), and when
//! `current` fills it *rotates* into `previous` — whose old entries are
//! dropped and counted as invalidations. A hot key that rotated out of
//! `current` keeps hitting from `previous`; once it ages out of both it
//! pays one recompute and re-enters. Rotation clones nothing (`previous`
//! is an `Arc` shared across snapshots), so the worst-case insert copies
//! `capacity / 2` entries.
//!
//! # What is never cached
//!
//! Only `EstimateStatus::Ok` values are published. Degraded answers
//! (budget-truncated joins, deadline expiry, isolated panics) and
//! rejected queries report the `f(tag)` clamp bound, not the estimate —
//! caching one would serve a policy artifact as a fact to a later,
//! healthier request. The callers in [`Estimator`](crate::Estimator)
//! enforce this; the cache itself stores whatever it is handed.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use xpe_xpath::Query;

use crate::joincache::PrehashedHasher;

/// Canonical full-query cache key: the query's canonical text with its
/// hash computed once at construction. Unlike
/// [`SkeletonKey`](crate::SkeletonKey), order constraints and the target
/// node are **included** — two queries get equal keys iff their whole
/// estimates are interchangeable.
#[derive(Clone, Debug)]
pub struct EstimateKey {
    text: String,
    hash: u64,
}

impl PartialEq for EstimateKey {
    fn eq(&self, other: &Self) -> bool {
        self.text == other.text
    }
}

impl Eq for EstimateKey {}

impl std::hash::Hash for EstimateKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl EstimateKey {
    /// Builds a key from canonical query text the caller already has
    /// (the workload generator computes it for deduplication; reusing it
    /// skips a re-render).
    pub fn from_text(text: String) -> EstimateKey {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        h.write(text.as_bytes());
        EstimateKey {
            hash: h.finish(),
            text,
        }
    }

    /// The canonical query text this key normalizes to.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The precomputed 64-bit hash of the text.
    #[inline]
    pub fn hash64(&self) -> u64 {
        self.hash
    }
}

/// Builds the [`EstimateKey`] of `query` by rendering its canonical
/// text.
pub fn estimate_key(query: &Query) -> EstimateKey {
    EstimateKey::from_text(query.to_string())
}

/// A map keyed by [`EstimateKey`] through its precomputed hash.
type KeyMap = HashMap<EstimateKey, f64, BuildHasherDefault<PrehashedHasher>>;

/// An immutable view of the published estimates: the copy-on-write
/// `current` segment plus the shared, frozen `previous` segment. The
/// two are disjoint by construction (a key present in either is never
/// re-inserted), so `len` is exact.
#[derive(Debug, Default)]
pub struct EstimateSnapshot {
    current: KeyMap,
    previous: Arc<KeyMap>,
}

impl EstimateSnapshot {
    /// The published estimate for `key`, if any — a plain hash probe per
    /// segment, no lock, no atomic RMW.
    #[inline]
    pub fn get(&self, key: &EstimateKey) -> Option<f64> {
        self.current
            .get(key)
            .or_else(|| self.previous.get(key))
            .copied()
    }

    /// Number of published estimates across both segments.
    pub fn len(&self) -> usize {
        self.current.len() + self.previous.len()
    }

    /// Whether no estimate has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Epoch-published, capacity-bounded cache of finished full-query
/// estimates (see the module docs for the design).
///
/// Shared by every estimator of an engine or serving generation; each
/// holds its own [`EstimateCacheReader`] front, so warm hits never touch
/// the publication mutex. Capacity 0 disables the cache entirely:
/// lookups return nothing, publishes store nothing, and no counter
/// moves — matching an engine built without one.
#[derive(Debug)]
pub struct EstimateCache {
    /// The current snapshot; the mutex guards publication, not reads —
    /// readers clone the `Arc` out and drop the lock immediately.
    published: Mutex<Arc<EstimateSnapshot>>,
    /// Bumped (release) after every publication; readers revalidate
    /// their held snapshot with one acquire load.
    epoch: AtomicU64,
    /// Total entries across both segments; 0 disables the cache.
    capacity: usize,
    /// Entries the `current` segment holds before rotating.
    segment_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    invalidations: AtomicU64,
    locks: AtomicU64,
}

impl EstimateCache {
    /// A cache holding at most `capacity` estimates (split across the
    /// two segments; 0 disables caching entirely).
    pub fn with_capacity(capacity: usize) -> Self {
        EstimateCache {
            published: Mutex::new(Arc::new(EstimateSnapshot::default())),
            epoch: AtomicU64::new(0),
            capacity,
            segment_capacity: capacity.div_ceil(2),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            locks: AtomicU64::new(0),
        }
    }

    /// Maximum entries the cache will hold (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current publication epoch. A reader holding a snapshot taken
    /// at this epoch sees every estimate published so far.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn lock_published(&self) -> MutexGuard<'_, Arc<EstimateSnapshot>> {
        self.locks.fetch_add(1, Ordering::Relaxed);
        self.published
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The current snapshot and its epoch, read consistently under the
    /// publication mutex (one acquisition; probe the returned `Arc`
    /// lock-free afterwards).
    pub fn snapshot(&self) -> (Arc<EstimateSnapshot>, u64) {
        let published = self.lock_published();
        // The epoch is only ever written under this mutex, so the pair
        // is consistent.
        (Arc::clone(&published), self.epoch.load(Ordering::Relaxed))
    }

    /// Publishes `value` under `key`, returning the snapshot that now
    /// holds it (so the inserting reader can adopt it without a second
    /// lock). First-publication-wins: a key already present keeps its
    /// stored value — estimates are pure functions of the canonical
    /// query, so racing inserts always carry bit-identical values.
    pub fn insert(&self, key: EstimateKey, value: f64) -> (Arc<EstimateSnapshot>, u64) {
        debug_assert!(self.capacity > 0, "insert on a disabled cache");
        let mut published = self.lock_published();
        if published.get(&key).is_some() {
            return (Arc::clone(&published), self.epoch.load(Ordering::Relaxed));
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let mut current = published.current.clone();
        let mut previous = Arc::clone(&published.previous);
        current.insert(key, value);
        if current.len() >= self.segment_capacity {
            // Rotate: the old `previous` entries age out (counted as
            // invalidations); the filled `current` freezes into the new
            // `previous` without copying a single entry.
            self.invalidations
                .fetch_add(previous.len() as u64, Ordering::Relaxed);
            previous = Arc::new(std::mem::take(&mut current));
        }
        let next = Arc::new(EstimateSnapshot { current, previous });
        *published = Arc::clone(&next);
        let epoch = self.epoch.fetch_add(1, Ordering::Release) + 1;
        (next, epoch)
    }

    fn add_counts(&self, hits: u64, misses: u64) {
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    /// Number of published estimates.
    pub fn len(&self) -> usize {
        self.snapshot().0.len()
    }

    /// Whether no estimate has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from a published estimate.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run the full estimate. A disabled cache
    /// counts nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Estimates published (racing duplicate inserts excluded).
    pub fn inserts(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Entries dropped by segment rotation — the cache's only eviction
    /// path. (A serving generation swap invalidates by replacing the
    /// whole cache, which this counter cannot see; the fresh cache
    /// starts from zero.)
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Number of publish-mutex acquisitions so far: snapshot refreshes,
    /// inserts, and introspection ([`len`](Self::len)) all count. Warm
    /// hits served from a reader's held snapshot must not move this —
    /// `kernel_stats()` folds it into `lock_acquisitions` so tests can
    /// assert exactly that.
    pub fn lock_count(&self) -> u64 {
        self.locks.load(Ordering::Relaxed)
    }
}

/// One estimator's private front for a shared [`EstimateCache`]: the
/// held snapshot `Arc` plus the epoch it was taken at. Lookups
/// revalidate with one atomic load and probe the snapshot lock-free;
/// only an epoch moved by *another* estimator's publish costs a snapshot
/// refresh (one mutex acquisition), and a publish adopts the snapshot it
/// created, so a single-writer workload re-locks nothing. Hit/miss
/// tallies accumulate locally and fold into the shared counters at
/// [`flush`](Self::flush) (the engine flushes in `kernel_stats()` and
/// batch workers at chunk boundaries) and on drop, keeping even the
/// counter cache lines off the warm path.
#[derive(Debug)]
pub struct EstimateCacheReader {
    shared: Arc<EstimateCache>,
    snap: Arc<EstimateSnapshot>,
    epoch: u64,
    hits: u64,
    misses: u64,
}

impl EstimateCacheReader {
    /// Wraps a shared cache, taking the initial snapshot (one lock).
    pub fn new(shared: Arc<EstimateCache>) -> Self {
        let (snap, epoch) = shared.snapshot();
        EstimateCacheReader {
            shared,
            snap,
            epoch,
            hits: 0,
            misses: 0,
        }
    }

    /// The shared cache this front reads from.
    pub fn shared(&self) -> &Arc<EstimateCache> {
        &self.shared
    }

    /// Looks up a key: one epoch load, then a lock-free snapshot probe.
    /// Refreshes the held snapshot first when the epoch moved.
    pub fn lookup(&mut self, key: &EstimateKey) -> Option<f64> {
        if self.shared.capacity == 0 {
            return None;
        }
        let epoch = self.shared.epoch();
        if epoch != self.epoch {
            let (snap, epoch) = self.shared.snapshot();
            self.snap = snap;
            self.epoch = epoch;
        }
        match self.snap.get(key) {
            Some(v) => {
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Publishes a finished estimate and adopts the snapshot holding it,
    /// so this reader's next lookup needs no refresh.
    pub fn publish(&mut self, key: EstimateKey, value: f64) {
        if self.shared.capacity == 0 {
            return;
        }
        let (snap, epoch) = self.shared.insert(key, value);
        self.snap = snap;
        self.epoch = epoch;
    }

    /// Folds the local hit/miss tallies into the shared counters (two
    /// atomic adds, no locks; a no-op when there is nothing to fold).
    pub fn flush(&mut self) {
        if self.hits > 0 || self.misses > 0 {
            self.shared.add_counts(self.hits, self.misses);
            self.hits = 0;
            self.misses = 0;
        }
    }
}

impl Drop for EstimateCacheReader {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpe_xpath::parse_query;

    fn key(text: &str) -> EstimateKey {
        estimate_key(&parse_query(text).unwrap())
    }

    #[test]
    fn canonical_text_is_the_normalizer() {
        // Surface variants of one query collapse into one key: the
        // `pres::` orientation canonicalizes to `folls::`, and both
        // renderings parse back to the same canonical text. This pins
        // the normalization the cache keys on.
        let a = key("//A[/C/pres::B]");
        let b = key("//A[/B/folls::C]");
        assert_eq!(a.text(), b.text(), "{} vs {}", a.text(), b.text());
        assert_eq!(a, b);
        assert_eq!(a.hash64(), b.hash64());
        assert!(a.text().contains("folls::"), "{}", a.text());
        assert!(!a.text().contains("pres::"), "{}", a.text());
    }

    #[test]
    fn order_and_target_variants_sharing_a_skeleton_get_distinct_keys() {
        // These four share one join-cache *skeleton* (structure only);
        // the estimate cache must keep them apart.
        let plain = key("//A[/C]/B");
        let ordered = key("//A[/C/folls::B]");
        let reversed = key("//A[/C/pres::B]");
        let retargeted = key("//A[/$C]/B");
        assert_ne!(plain, ordered);
        assert_ne!(ordered, reversed);
        assert_ne!(plain, retargeted);
        let skel = crate::joincache::skeleton_key(&parse_query("//A[/C]/B").unwrap());
        for q in ["//A[/C/folls::B]", "//A[/C/pres::B]", "//A[/$C]/B"] {
            assert_eq!(
                skel,
                crate::joincache::skeleton_key(&parse_query(q).unwrap()),
                "{q} was expected to share the skeleton"
            );
        }
    }

    #[test]
    fn warm_hits_take_zero_locks() {
        let cache = Arc::new(EstimateCache::with_capacity(64));
        let mut reader = EstimateCacheReader::new(Arc::clone(&cache));
        let k = key("//A//C");
        assert_eq!(reader.lookup(&k), None);
        reader.publish(k.clone(), 2.0);
        let locks = cache.lock_count();
        for _ in 0..100 {
            assert_eq!(reader.lookup(&k), Some(2.0));
        }
        assert_eq!(cache.lock_count(), locks, "warm hits must not lock");
        reader.flush();
        assert_eq!(cache.hits(), 100);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn publications_propagate_across_readers_via_the_epoch() {
        let cache = Arc::new(EstimateCache::with_capacity(64));
        let mut writer = EstimateCacheReader::new(Arc::clone(&cache));
        let mut reader = EstimateCacheReader::new(Arc::clone(&cache));
        let k = key("//A/B");
        assert_eq!(reader.lookup(&k), None);
        writer.publish(k.clone(), 5.0);
        // The other reader revalidates its epoch and refreshes.
        assert_eq!(reader.lookup(&k), Some(5.0));
    }

    #[test]
    fn first_publication_wins() {
        let cache = Arc::new(EstimateCache::with_capacity(64));
        let k = key("//A");
        cache.insert(k.clone(), 1.0);
        cache.insert(k.clone(), 9.0);
        let (snap, _) = cache.snapshot();
        assert_eq!(snap.get(&k), Some(1.0));
        assert_eq!(cache.inserts(), 1, "the losing insert is not counted");
    }

    #[test]
    fn rotation_bounds_capacity_and_counts_invalidations() {
        let cache = Arc::new(EstimateCache::with_capacity(8));
        let mut reader = EstimateCacheReader::new(Arc::clone(&cache));
        for i in 0..32 {
            reader.publish(EstimateKey::from_text(format!("//Q{i}")), i as f64);
            assert!(cache.len() <= 8, "len {} exceeds capacity", cache.len());
        }
        assert!(cache.invalidations() > 0);
        assert_eq!(cache.inserts(), 32);
        // A key still inside the retained window keeps hitting.
        assert_eq!(
            reader.lookup(&EstimateKey::from_text("//Q31".to_owned())),
            Some(31.0)
        );
    }

    #[test]
    fn zero_capacity_disables_caching_and_counts_nothing() {
        let cache = Arc::new(EstimateCache::with_capacity(0));
        let mut reader = EstimateCacheReader::new(Arc::clone(&cache));
        let k = key("//A/B");
        reader.publish(k.clone(), 1.0);
        assert_eq!(reader.lookup(&k), None);
        reader.flush();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
        assert_eq!(cache.inserts(), 0);
        assert_eq!(cache.hit_rate(), 0.0);
    }
}
