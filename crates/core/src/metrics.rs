//! Accuracy metrics for the experiments.
//!
//! The paper reports the *average relative error* of estimates over a
//! workload from which zero-result ("negative") queries were removed, so
//! the denominator is always at least one.

/// Relative error of one estimate: `|est − actual| / actual`.
///
/// `actual` is clamped to at least 1 so that workloads containing an
/// accidental zero-result query do not divide by zero (the generators
/// remove negative queries, matching the paper).
pub fn relative_error(estimate: f64, actual: u64) -> f64 {
    let a = (actual as f64).max(1.0);
    (estimate - actual as f64).abs() / a
}

/// Mean relative error over `(estimate, actual)` pairs; `None` for an
/// empty workload.
pub fn mean_relative_error<I>(pairs: I) -> Option<f64>
where
    I: IntoIterator<Item = (f64, u64)>,
{
    let mut sum = 0.0;
    let mut n = 0usize;
    for (est, actual) in pairs {
        sum += relative_error(est, actual);
        n += 1;
    }
    (n > 0).then(|| sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_estimate_has_zero_error() {
        assert_eq!(relative_error(4.0, 4), 0.0);
    }

    #[test]
    fn over_and_under_estimates_are_symmetric() {
        assert_eq!(relative_error(6.0, 4), 0.5);
        assert_eq!(relative_error(2.0, 4), 0.5);
    }

    #[test]
    fn zero_actual_clamps_denominator() {
        assert_eq!(relative_error(3.0, 0), 3.0);
    }

    #[test]
    fn mean_over_workload() {
        let pairs = vec![(4.0, 4), (6.0, 4), (2.0, 4)];
        assert!((mean_relative_error(pairs).unwrap() - (1.0 / 3.0)).abs() < 1e-12);
        assert_eq!(mean_relative_error(Vec::new()), None);
    }
}

/// Distributional error statistics over a workload: the paper reports
/// averages, but tails matter to an optimizer (one 30× misestimate can
/// wreck a plan even when the mean is 2%).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ErrorStats {
    /// Number of (estimate, actual) pairs.
    pub count: usize,
    /// Mean relative error.
    pub mean: f64,
    /// Median relative error.
    pub median: f64,
    /// 90th percentile relative error.
    pub p90: f64,
    /// Worst relative error.
    pub max: f64,
}

impl ErrorStats {
    /// Computes the statistics over `(estimate, actual)` pairs. Returns
    /// `None` for an empty workload.
    pub fn compute<I>(pairs: I) -> Option<ErrorStats>
    where
        I: IntoIterator<Item = (f64, u64)>,
    {
        let mut errors: Vec<f64> = pairs
            .into_iter()
            .map(|(e, a)| relative_error(e, a))
            .collect();
        if errors.is_empty() {
            return None;
        }
        errors.sort_by(f64::total_cmp);
        let n = errors.len();
        let pct = |q: f64| errors[(((n - 1) as f64) * q).round() as usize];
        Some(ErrorStats {
            count: n,
            mean: errors.iter().sum::<f64>() / n as f64,
            median: pct(0.5),
            p90: pct(0.9),
            max: errors[n - 1],
        })
    }
}

#[cfg(test)]
mod error_stats_tests {
    use super::*;

    #[test]
    fn stats_over_known_distribution() {
        // Errors: 0.0, 0.5, 0.5, 1.0 (a = 4 throughout).
        let pairs = vec![(4.0, 4), (6.0, 4), (2.0, 4), (8.0, 4)];
        let s = ErrorStats::compute(pairs).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 0.5).abs() < 1e-12);
        assert_eq!(s.median, 0.5);
        assert_eq!(s.max, 1.0);
        assert!(s.p90 >= s.median && s.p90 <= s.max);
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(ErrorStats::compute(Vec::new()), None);
    }

    #[test]
    fn single_pair() {
        let s = ErrorStats::compute(vec![(3.0, 2)]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 0.5);
        assert_eq!(s.median, 0.5);
        assert_eq!(s.p90, 0.5);
        assert_eq!(s.max, 0.5);
    }
}
