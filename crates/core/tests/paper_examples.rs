//! Reproduction of every worked example in the paper (§4–§5) on the
//! Figure 1 instance, digit for digit.

use xpe_core::{path_join, Estimator};
use xpe_synopsis::{Summary, SummaryConfig};
use xpe_xml::nav::DocOrder;
use xpe_xpath::parse_query;

fn setup() -> (xpe_xml::Document, Summary) {
    let doc = xpe_xml::fixtures::paper_figure1();
    let summary = Summary::build(&doc, SummaryConfig::default());
    (doc, summary)
}

fn assert_close(actual: f64, expected: f64) {
    assert!(
        (actual - expected).abs() < 1e-9,
        "expected {expected}, got {actual}"
    );
}

#[test]
fn example_4_2_simple_query_is_exact() {
    // "//A//C": selectivity of both A and C is 2.
    let (_, s) = setup();
    let est = Estimator::new(&s);
    assert_close(est.estimate_str("//A//C").unwrap(), 2.0);
    assert_close(est.estimate_str("//$A//C").unwrap(), 2.0);
}

#[test]
fn theorem_4_1_on_all_simple_queries() {
    // Every root-to-leaf-derived simple path estimates exactly at v = 0.
    let (doc, s) = setup();
    let est = Estimator::new(&s);
    let order = DocOrder::new(&doc);
    for q in [
        "/Root",
        "/Root/A",
        "/Root/A/B",
        "/Root/A/B/D",
        "/Root/A/B/E",
        "/Root/A/C",
        "/Root/A/C/E",
        "/Root/A/C/F",
        "//A",
        "//B",
        "//C",
        "//D",
        "//E",
        "//F",
        "//B/D",
        "//B/E",
        "//C/E",
        "//C/F",
        "//A//D",
        "//A//E",
    ] {
        let query = parse_query(q).unwrap();
        let exact = xpe_xpath::selectivity(&doc, &order, &query) as f64;
        assert_close(est.estimate(&query), exact);
    }
}

#[test]
fn example_4_5_branch_estimate() {
    // Q2 = //C[/E]/F with target E: f_Q2(C) = 1, f_Q'2(C) = 2,
    // f_Q'2(E) = 2 → S ≈ 2 · 1 / 2 = 1 (also the exact answer).
    let (_, s) = setup();
    let est = Estimator::new(&s);
    assert_close(est.estimate_str("//C[/$E]/F").unwrap(), 1.0);
    // And for C itself (trunk): f = 1, exact.
    assert_close(est.estimate_str("//$C[/E]/F").unwrap(), 1.0);
}

#[test]
fn example_5_1_order_query_target_sibling() {
    // Q̃1 = A[/C[/F]/folls::B/D], target B:
    //   S_Q̃'(B) = 2 (o-histogram), S_Q(B) ≈ 1.33, S_Q'(B) ≈ 2.67
    //   → S ≈ 2 · 1.33 / 2.67 = 1.
    let (_, s) = setup();
    let est = Estimator::new(&s);
    assert_close(est.estimate_str("//A[/C[/F]/folls::$B/D]").unwrap(), 1.0);
}

#[test]
fn example_5_1_intermediate_quantities() {
    // The ingredients the paper lists: S_Q1(B) = 1.3̅ and S_Q'1(B) = 2.6̅.
    let (_, s) = setup();
    let est = Estimator::new(&s);
    // Q1 (order-free counterpart): //A[/C/F][/B/D], target B.
    let q1 = parse_query("//A[/C[/F]][/$B/D]").unwrap();
    assert_close(est.estimate(&q1), 4.0 / 3.0);
    // Q'1 (neighbor trimmed): //A[/C][/B/D], target B.
    let q1p = parse_query("//A[/C][/$B/D]").unwrap();
    assert_close(est.estimate(&q1p), 8.0 / 3.0);
}

#[test]
fn example_5_2_order_query_target_below_sibling() {
    // Same query, target D: S ≈ S_Q(D) · S_Q̃'(B) / S_Q'(B)
    //   = 1.33 · 2 / 2.67 = 1.
    let (_, s) = setup();
    let est = Estimator::new(&s);
    assert_close(est.estimate_str("//A[/C[/F]/folls::B/$D]").unwrap(), 1.0);
}

#[test]
fn equation_5_trunk_target_is_min_bounded() {
    // Target A in Q̃1: S ≤ S_Q(A) and S ≤ S_Q̃(heads).
    let (_, s) = setup();
    let est = Estimator::new(&s);
    let ordered = est.estimate_str("//$A[/C[/F]/folls::B/D]").unwrap();
    let plain = est.estimate_str("//$A[/C[/F]][/B/D]").unwrap();
    assert!(ordered <= plain + 1e-9);
    assert!(ordered >= 0.0);
    // Exact answer is 1 (only the middle A); the estimate is min-bounded
    // at S_Q̃(B) = 1.
    assert_close(ordered, 1.0);
}

#[test]
fn example_5_3_following_axis_conversion() {
    // //A[/C/foll::D] with target D converts to //A[/C/folls::B/D].
    let (_, s) = setup();
    let est = Estimator::new(&s);
    let via_foll = est.estimate_str("//A[/C/foll::$D]").unwrap();
    let via_sibling = est.estimate_str("//A[/C/folls::B/$D]").unwrap();
    assert_close(via_foll, via_sibling);
    // Exact answer on Figure 1 is 2; the estimate lands close.
    assert!((via_foll - 2.0).abs() < 1.01, "estimate {via_foll}");
}

#[test]
fn preceding_axis_converts_symmetrically() {
    let (_, s) = setup();
    let est = Estimator::new(&s);
    let via_prec = est.estimate_str("//A[/C/prec::$D]").unwrap();
    let via_sibling = est.estimate_str("//A[/C/pres::B/$D]").unwrap();
    assert_close(via_prec, via_sibling);
}

#[test]
fn negative_queries_estimate_zero() {
    let (_, s) = setup();
    let est = Estimator::new(&s);
    assert_close(est.estimate_str("//F/E").unwrap(), 0.0);
    assert_close(est.estimate_str("//D/A").unwrap(), 0.0);
    assert_close(est.estimate_str("//Zebra").unwrap(), 0.0);
    assert_close(est.estimate_str("//A[/F]/B").unwrap(), 0.0);
}

#[test]
fn join_frequencies_match_figure_3() {
    let (_, s) = setup();
    let q = parse_query("//A[/C/F]/B/D").unwrap();
    let j = path_join(&s, &q);
    // Figure 3(b): A:{(p7,1)}, C:{(p3,1)}, F:{(p1,1)}, B:{(p5,3)}, D:{(p5,4)}.
    let freq_of = |tag: &str| {
        let n = q.node_ids().find(|&n| q.node(n).tag == tag).unwrap();
        j.frequency(n)
    };
    assert_close(freq_of("A"), 1.0);
    assert_close(freq_of("C"), 1.0);
    assert_close(freq_of("F"), 1.0);
    assert_close(freq_of("B"), 3.0);
    assert_close(freq_of("D"), 4.0);
}

#[test]
fn sibling_query_without_branches_uses_order_table_directly() {
    // //A[/C/folls::$B]: S_Q̃'(B) = g(p5, C, after) = 2; S_Q(B)/S_Q'(B)
    // are equal (no extra branch) so the estimate is 2 — the exact answer.
    let (_, s) = setup();
    let est = Estimator::new(&s);
    assert_close(est.estimate_str("//A[/C/folls::$B]").unwrap(), 2.0);
    // The reversed direction: B before C happens once.
    assert_close(est.estimate_str("//A[/C/pres::$B]").unwrap(), 1.0);
}

#[test]
fn order_estimates_against_exact_on_figure1() {
    // The estimator's assumptions hold well on Figure 1: every order query
    // below estimates within 1.0 absolute of the truth.
    let (doc, s) = setup();
    let est = Estimator::new(&s);
    let order = DocOrder::new(&doc);
    for q in [
        "//A[/C/folls::$B]",
        "//A[/B/folls::$C]",
        "//A[/C/folls::B/$D]",
        "//A[/B/pres::$C]",
        "//$A[/C/folls::B]",
        "//$A[/B/folls::C]",
    ] {
        let query = parse_query(q).unwrap();
        let exact = xpe_xpath::selectivity(&doc, &order, &query) as f64;
        let estimate = est.estimate(&query);
        assert!(
            (estimate - exact).abs() <= 1.0 + 1e-9,
            "{q}: est {estimate} vs exact {exact}"
        );
    }
}

#[test]
fn before_head_target_reads_the_before_region() {
    // Target is the *before* head: //A[/$C/folls::B] asks for C elements
    // followed by a sibling B — the o-histogram lookup must use the
    // +element (before) region. Exact on Figure 1: the middle A's C (a B
    // follows it) and the last A's C.
    let (doc, s) = setup();
    let est = Estimator::new(&s);
    let order = DocOrder::new(&doc);
    let q = parse_query("//A[/$C/folls::B]").unwrap();
    let exact = xpe_xpath::selectivity(&doc, &order, &q) as f64;
    assert_eq!(exact, 2.0);
    assert_close(est.estimate(&q), 2.0);
    // And the mirrored preceding-sibling form: B elements with C before
    // them — the after region.
    let q = parse_query("//A[/$B/pres::C]").unwrap();
    let exact = xpe_xpath::selectivity(&doc, &order, &q) as f64;
    assert_eq!(exact, 2.0);
    assert_close(est.estimate(&q), 2.0);
}
