//! Tests of the documented generalizations beyond the paper's canonical
//! `q1[/q2]/q3` shape: several predicates, nested branching nodes, and
//! order constraints at more than one owner.

use xpe_core::Estimator;
use xpe_synopsis::{Summary, SummaryConfig};
use xpe_xml::{nav::DocOrder, parse_document, Document};
use xpe_xpath::parse_query;

fn setup(xml: &str) -> (Document, Summary) {
    let doc = parse_document(xml).unwrap();
    let summary = Summary::build(&doc, SummaryConfig::default());
    (doc, summary)
}

fn exact(doc: &Document, q: &str) -> f64 {
    let order = DocOrder::new(doc);
    xpe_xpath::selectivity(doc, &order, &parse_query(q).unwrap()) as f64
}

#[test]
fn three_predicates_on_one_node() {
    let xml = "<r>\
        <p><a/><b/><c/></p>\
        <p><a/><b/></p>\
        <p><a/><c/></p>\
        <p><b/><c/></p>\
        <p><a/><b/><c/></p>\
     </r>";
    let (doc, s) = setup(xml);
    let est = Estimator::new(&s);
    let q = "//$p[/a][/b][/c]";
    let truth = exact(&doc, q);
    assert_eq!(truth, 2.0);
    let e = est.estimate_str(q).unwrap();
    // Multiple predicates go beyond Eq. 2's single-branch form; the
    // estimate must stay in a sane band around the truth.
    assert!(e > 0.0 && (e - truth).abs() <= 2.0, "estimate {e}");
}

#[test]
fn nested_branching_nodes() {
    // Branches at two levels: r/p[a] and p/q[b]/c.
    let xml = "<r>\
        <p><a/><q><b/><c/></q></p>\
        <p><q><b/><c/></q></p>\
        <p><a/><q><c/></q></p>\
     </r>";
    let (doc, s) = setup(xml);
    let est = Estimator::new(&s);
    for q in ["//p[/a]/q[/b]/$c", "//$p[/a]/q[/b]", "//p[/a]/$q[/b]/c"] {
        let truth = exact(&doc, q);
        let e = est.estimate_str(q).unwrap();
        assert!(
            (e - truth).abs() <= 1.5,
            "{q}: estimate {e} vs exact {truth}"
        );
    }
}

#[test]
fn order_constraints_at_two_owners() {
    // A sibling constraint under p AND another under q, in one query.
    let xml = "<r>\
        <p><x/><y/><q><m/><n/></q></p>\
        <p><y/><x/><q><m/><n/></q></p>\
        <p><x/><y/><q><n/><m/></q></p>\
     </r>";
    let (doc, s) = setup(xml);
    let est = Estimator::new(&s);
    let q = "//$p[/x/folls::y][/q[/m/folls::n]]";
    let truth = exact(&doc, q);
    assert_eq!(truth, 1.0);
    let e = est.estimate_str(q).unwrap();
    assert!(e.is_finite() && e >= 0.0);
    // Multi-chain handling is a generalization; demand the right
    // neighbourhood rather than exactness.
    assert!((e - truth).abs() <= 2.0, "estimate {e} vs {truth}");
}

#[test]
fn order_constraint_below_a_branching_trunk() {
    let xml = "<r>\
        <lib><k/><shelf><a/><b/></shelf></lib>\
        <lib><shelf><b/><a/></shelf></lib>\
     </r>";
    let (doc, s) = setup(xml);
    let est = Estimator::new(&s);
    let q = "//lib[/k]/shelf[/a/folls::$b]";
    let truth = exact(&doc, q);
    assert_eq!(truth, 1.0);
    let e = est.estimate_str(q).unwrap();
    assert!((e - truth).abs() <= 1.0, "estimate {e} vs {truth}");
}

#[test]
fn deep_target_below_second_chain_head() {
    let xml = "<r>\
        <p><x/><y><d/><d/></y></p>\
        <p><y><d/></y><x/></p>\
     </r>";
    let (doc, s) = setup(xml);
    let est = Estimator::new(&s);
    let q = "//p[/x/folls::y/$d]";
    let truth = exact(&doc, q);
    assert_eq!(truth, 2.0);
    let e = est.estimate_str(q).unwrap();
    assert!((e - truth).abs() <= 1.5, "estimate {e} vs {truth}");
}

#[test]
fn estimates_scale_with_data_not_query_complexity() {
    // Estimation is a pure summary computation: double the data, the
    // simple estimate doubles (pid structure is scale-invariant here).
    let unit = "<p><a/><b/></p>";
    let xml1 = format!("<r>{unit}</r>");
    let xml2 = format!("<r>{}</r>", unit.repeat(10));
    let (_, s1) = setup(&xml1);
    let (_, s2) = setup(&xml2);
    let e1 = Estimator::new(&s1).estimate_str("//p/a").unwrap();
    let e2 = Estimator::new(&s2).estimate_str("//p/a").unwrap();
    assert_eq!(e1, 1.0);
    assert_eq!(e2, 10.0);
}
