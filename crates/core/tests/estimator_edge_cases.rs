//! Estimator edge cases beyond the paper's worked examples: degenerate
//! queries, chains of three, document-axis conversions on recursive data,
//! and graceful handling of empty joins.

use xpe_core::Estimator;
use xpe_synopsis::{Summary, SummaryConfig};
use xpe_xml::{nav::DocOrder, parse_document};
use xpe_xpath::parse_query;

fn summary_of(xml: &str) -> Summary {
    Summary::build(&parse_document(xml).unwrap(), SummaryConfig::default())
}

fn exact(xml: &str, q: &str) -> f64 {
    let doc = parse_document(xml).unwrap();
    let order = DocOrder::new(&doc);
    xpe_xpath::selectivity(&doc, &order, &parse_query(q).unwrap()) as f64
}

#[test]
fn single_step_queries() {
    let xml = "<r><a/><a/><b/></r>";
    let s = summary_of(xml);
    let est = Estimator::new(&s);
    assert_eq!(est.estimate_str("//a").unwrap(), 2.0);
    assert_eq!(est.estimate_str("//r").unwrap(), 1.0);
    assert_eq!(est.estimate_str("/r").unwrap(), 1.0);
    assert_eq!(est.estimate_str("/a").unwrap(), 0.0, "a is not the root");
    assert_eq!(est.estimate_str("//zzz").unwrap(), 0.0);
}

#[test]
fn order_query_with_unknown_tag_is_zero() {
    let xml = "<r><a><b/><c/></a></r>";
    let s = summary_of(xml);
    let est = Estimator::new(&s);
    assert_eq!(est.estimate_str("//a[/b/folls::zzz]").unwrap(), 0.0);
    assert_eq!(est.estimate_str("//a[/zzz/folls::b]").unwrap(), 0.0);
    assert_eq!(est.estimate_str("//a[/b/foll::zzz]").unwrap(), 0.0);
}

#[test]
fn order_query_whose_plain_part_is_empty() {
    // b and q never co-occur under a.
    let xml = "<r><a><b/></a><a><q/></a></r>";
    let s = summary_of(xml);
    let est = Estimator::new(&s);
    assert_eq!(est.estimate_str("//a[/b/folls::q]").unwrap(), 0.0);
}

#[test]
fn chain_of_three_sibling_constraints() {
    let xml = "<r>\
        <a><x/><y/><z/></a>\
        <a><x/><y/><z/></a>\
        <a><z/><y/><x/></a>\
     </r>";
    let s = summary_of(xml);
    let est = Estimator::new(&s);
    let e = est.estimate_str("//$a[/x/folls::y/folls::z]").unwrap();
    let truth = exact(xml, "//$a[/x/folls::y/folls::z]");
    assert_eq!(truth, 2.0);
    // Chains beyond length two are a documented generalization; the
    // estimate must stay sane (bounded by the unordered count, positive).
    assert!(e > 0.0 && e <= 3.0 + 1e-9, "estimate {e}");
}

#[test]
fn document_axis_conversion_on_deep_paths() {
    // D sits two levels below A; foll:: must decompose through B.
    let xml = "<r>\
        <a><c/><b><m><d/></m></b></a>\
        <a><b><m><d/></m></b><c/></a>\
     </r>";
    let s = summary_of(xml);
    let est = Estimator::new(&s);
    let e = est.estimate_str("//a[/c/foll::$d]").unwrap();
    let truth = exact(xml, "//a[/c/foll::$d]");
    assert_eq!(truth, 1.0);
    assert!((e - truth).abs() <= 1.0, "estimate {e} vs {truth}");
}

#[test]
fn document_axis_conversion_with_multiple_intermediate_labels() {
    // d reachable below a through two different child labels: the
    // conversion must sum over both sibling-level rewrites.
    let xml = "<r>\
        <a><c/><b><d/></b><m><d/></m></a>\
     </r>";
    let s = summary_of(xml);
    let est = Estimator::new(&s);
    let e = est.estimate_str("//a[/c/foll::$d]").unwrap();
    let truth = exact(xml, "//a[/c/foll::$d]");
    assert_eq!(truth, 2.0);
    assert!((e - truth).abs() <= 1.0 + 1e-9, "estimate {e} vs {truth}");
}

#[test]
fn preceding_conversion_mirrors_following() {
    let xml = "<r><a><b><d/></b><c/></a><a><c/><b><d/></b></a></r>";
    let s = summary_of(xml);
    let est = Estimator::new(&s);
    let foll = est.estimate_str("//a[/c/foll::$d]").unwrap();
    let prec = est.estimate_str("//a[/c/prec::$d]").unwrap();
    let foll_truth = exact(xml, "//a[/c/foll::$d]");
    let prec_truth = exact(xml, "//a[/c/prec::$d]");
    assert_eq!(foll_truth, 1.0);
    assert_eq!(prec_truth, 1.0);
    assert!((foll - foll_truth).abs() <= 1.0);
    assert!((prec - prec_truth).abs() <= 1.0);
}

#[test]
fn sibling_constraint_between_same_tags() {
    // "a chapter followed by another chapter".
    let xml = "<r><b><ch/><ch/></b><b><ch/></b></r>";
    let s = summary_of(xml);
    let est = Estimator::new(&s);
    let e = est.estimate_str("//b[/ch/folls::$ch]").unwrap();
    assert_eq!(exact(xml, "//b[/ch/folls::$ch]"), 1.0);
    assert!((0.0..=3.0).contains(&e), "estimate {e}");
}

#[test]
fn deep_trunk_above_order_constraint() {
    let xml = "<lib>\
        <shelf><book><t/><ch/></book></shelf>\
        <shelf><book><ch/><t/></book></shelf>\
     </lib>";
    let s = summary_of(xml);
    let est = Estimator::new(&s);
    let e = est.estimate_str("//lib/shelf/book[/t/folls::$ch]").unwrap();
    assert_eq!(exact(xml, "//lib/shelf/book[/t/folls::$ch]"), 1.0);
    assert!((e - 1.0).abs() < 1e-9, "estimate {e}");
}

#[test]
fn multiple_independent_predicates_with_order() {
    // An extra unordered predicate alongside the constrained pair.
    let xml = "<r>\
        <a><k/><x/><y/></a>\
        <a><x/><y/></a>\
        <a><k/><y/><x/></a>\
     </r>";
    let s = summary_of(xml);
    let est = Estimator::new(&s);
    let e = est.estimate_str("//$a[/k][/x/folls::y]").unwrap();
    let truth = exact(xml, "//$a[/k][/x/folls::y]");
    assert_eq!(truth, 1.0);
    assert!(
        e >= 0.0 && (e - truth).abs() <= 1.5,
        "estimate {e} vs {truth}"
    );
}

#[test]
fn estimate_str_propagates_parse_errors() {
    let s = summary_of("<r><a/></r>");
    let est = Estimator::new(&s);
    assert!(est.estimate_str("not a query").is_err());
    assert!(est.estimate_str("//a[").is_err());
}

#[test]
fn branch_zero_denominator_is_zero_not_nan() {
    // Spine exists but full query empty → the Eq. 2 path must not divide
    // by zero.
    let xml = "<r><a><b/></a><a><c/></a></r>";
    let s = summary_of(xml);
    let est = Estimator::new(&s);
    let e = est.estimate_str("//a[/c]/$b").unwrap();
    assert!(e.is_finite());
    assert_eq!(e, 0.0);
}
