//! Fuzz-style property tests for the query parser: totality on arbitrary
//! input, and accept→display→parse stability.

use proptest::prelude::*;
use xpe_xpath::parse_query;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The query parser never panics.
    #[test]
    fn parser_total_on_arbitrary_input(input in ".{0,128}") {
        let _ = parse_query(&input);
    }

    /// Query-ish soup: accepted queries re-parse from their display form.
    #[test]
    fn accepted_queries_redisplay(
        parts in prop::collection::vec(
            prop_oneof![
                Just("/".to_owned()),
                Just("//".to_owned()),
                Just("a".to_owned()),
                Just("b".to_owned()),
                Just("c".to_owned()),
                Just("$".to_owned()),
                Just("[".to_owned()),
                Just("]".to_owned()),
                Just("folls::".to_owned()),
                Just("pres::".to_owned()),
                Just("foll::".to_owned()),
                Just("prec::".to_owned()),
                Just("[/b]".to_owned()),
                Just("[/b/folls::c]".to_owned()),
            ],
            1..16,
        )
    ) {
        let input: String = parts.concat();
        if let Ok(q) = parse_query(&input) {
            let rendered = q.to_string();
            let q2 = parse_query(&rendered)
                .unwrap_or_else(|e| panic!("display {rendered:?} unparseable: {e}"));
            prop_assert_eq!(q.len(), q2.len(), "{}", rendered);
            prop_assert_eq!(
                &q.node(q.target()).tag,
                &q2.node(q2.target()).tag,
                "{}", rendered
            );
        }
    }
}
