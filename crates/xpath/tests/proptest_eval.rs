//! Property tests cross-validating the optimized twig evaluator against a
//! naive brute-force embedding enumerator, and checking that `Display`
//! output is semantically equivalent to its source query.

use proptest::prelude::*;
use std::collections::HashSet;

use xpe_xml::{nav::DocOrder, Document, NodeId, TreeBuilder};
use xpe_xpath::{
    evaluate, parse_query, Axis, OrderConstraint, OrderKind, Query, QueryEdge, QueryNode,
    QueryNodeId,
};

// ---------------------------------------------------------------------------
// Naive oracle: enumerate every embedding by backtracking.
// ---------------------------------------------------------------------------

fn naive_match_sets(doc: &Document, order: &DocOrder, q: &Query) -> Vec<HashSet<NodeId>> {
    let mut sets = vec![HashSet::new(); q.len()];
    let mut assignment: Vec<Option<NodeId>> = vec![None; q.len()];
    backtrack(doc, order, q, 0, &mut assignment, &mut sets);
    sets
}

fn backtrack(
    doc: &Document,
    order: &DocOrder,
    q: &Query,
    idx: usize,
    assignment: &mut Vec<Option<NodeId>>,
    sets: &mut Vec<HashSet<NodeId>>,
) {
    if idx == q.len() {
        for (i, a) in assignment.iter().enumerate() {
            sets[i].insert(a.expect("complete assignment"));
        }
        return;
    }
    let qid = QueryNodeId::from_index(idx);
    let qnode = q.node(qid);
    for d in doc.node_ids() {
        if doc.tag_name(d) != qnode.tag {
            continue;
        }
        if !structurally_ok(doc, order, q, qid, d, assignment) {
            continue;
        }
        assignment[idx] = Some(d);
        if constraints_ok_so_far(doc, order, q, assignment) {
            backtrack(doc, order, q, idx + 1, assignment, sets);
        }
        assignment[idx] = None;
    }
}

fn structurally_ok(
    doc: &Document,
    _order: &DocOrder,
    q: &Query,
    qid: QueryNodeId,
    d: NodeId,
    assignment: &[Option<NodeId>],
) -> bool {
    match q.parent_of(qid) {
        None => match q.root_axis() {
            Axis::Child => d == doc.root(),
            _ => true,
        },
        Some((p, ei)) => {
            let pm = match assignment[p.index()] {
                Some(m) => m,
                None => return true, // parent not yet assigned (never happens: parents first)
            };
            match q.node(p).edges[ei].axis {
                Axis::Child => doc.parent(d) == Some(pm),
                Axis::Descendant => doc.is_ancestor(pm, d),
                _ => unreachable!("structural edges only"),
            }
        }
    }
}

fn constraints_ok_so_far(
    doc: &Document,
    order: &DocOrder,
    q: &Query,
    assignment: &[Option<NodeId>],
) -> bool {
    for owner in q.node_ids() {
        let qnode = q.node(owner);
        for c in &qnode.constraints {
            let b = assignment[qnode.edges[c.before].to.index()];
            let a = assignment[qnode.edges[c.after].to.index()];
            let (b, a) = match (b, a) {
                (Some(b), Some(a)) => (b, a),
                _ => continue, // check once both ends are assigned
            };
            let ok = match c.kind {
                OrderKind::Sibling => doc.parent(b) == doc.parent(a) && order.pre(b) < order.pre(a),
                OrderKind::Document => order.is_following(b, a),
            };
            if !ok {
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Random documents and queries.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct TreeSpec {
    tag: u8,
    children: Vec<TreeSpec>,
}

fn arb_doc() -> impl Strategy<Value = TreeSpec> {
    let leaf = (0u8..4).prop_map(|t| TreeSpec {
        tag: t,
        children: vec![],
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (0u8..4, prop::collection::vec(inner, 0..4))
            .prop_map(|(tag, children)| TreeSpec { tag, children })
    })
}

fn build_doc(spec: &TreeSpec) -> Document {
    let mut b = TreeBuilder::new();
    fn rec(b: &mut TreeBuilder, s: &TreeSpec) {
        b.begin_element(&format!("t{}", s.tag));
        for c in &s.children {
            rec(b, c);
        }
        b.end_element().unwrap();
    }
    // Wrap in a fixed root so sibling structure at top level is exercised.
    b.begin_element("R");
    rec(&mut b, spec);
    b.end_element().unwrap();
    b.finish().unwrap()
}

/// Plan for a small random query: a trunk of 1–2 nodes, the last of which
/// has 2–3 child branches, optionally with a sibling or document constraint
/// chain over the first two.
#[derive(Debug, Clone)]
struct QuerySpec {
    root_desc: bool,
    trunk: Vec<u8>,
    branches: Vec<(bool, u8, Option<u8>)>, // (desc axis, head tag, optional child tag)
    constraint: Option<(OrderKind, bool)>, // kind, reversed
    target_choice: u8,
}

fn arb_query() -> impl Strategy<Value = QuerySpec> {
    (
        any::<bool>(),
        prop::collection::vec(0u8..4, 1..3),
        prop::collection::vec((any::<bool>(), 0u8..4, proptest::option::of(0u8..4)), 2..4),
        proptest::option::of((
            prop_oneof![Just(OrderKind::Sibling), Just(OrderKind::Document)],
            any::<bool>(),
        )),
        any::<u8>(),
    )
        .prop_map(
            |(root_desc, trunk, branches, constraint, target_choice)| QuerySpec {
                root_desc,
                trunk,
                branches,
                constraint,
                target_choice,
            },
        )
}

fn build_query(spec: &QuerySpec) -> Option<Query> {
    let mut nodes: Vec<QueryNode> = Vec::new();
    let push = |nodes: &mut Vec<QueryNode>, tag: u8| -> u32 {
        nodes.push(QueryNode {
            tag: format!("t{tag}"),
            edges: Vec::new(),
            constraints: Vec::new(),
        });
        (nodes.len() - 1) as u32
    };
    let mut trunk_ids = Vec::new();
    for &t in &spec.trunk {
        let id = push(&mut nodes, t);
        if let Some(&prev) = trunk_ids.last() {
            let prev: u32 = prev;
            nodes[prev as usize].edges.push(QueryEdge {
                axis: Axis::Child,
                to: node_id(id),
            });
        }
        trunk_ids.push(id);
    }
    let owner = *trunk_ids.last().expect("trunk nonempty");
    let sibling_constraint = matches!(spec.constraint, Some((OrderKind::Sibling, _)));
    let mut branch_heads = Vec::new();
    for (i, &(desc, head, child)) in spec.branches.iter().enumerate() {
        let hid = push(&mut nodes, head);
        // Sibling constraints require child edges on the first two branches.
        let axis = if desc && !(sibling_constraint && i < 2) {
            Axis::Descendant
        } else {
            Axis::Child
        };
        nodes[owner as usize].edges.push(QueryEdge {
            axis,
            to: node_id(hid),
        });
        branch_heads.push(hid);
        if let Some(ct) = child {
            let cid = push(&mut nodes, ct);
            nodes[hid as usize].edges.push(QueryEdge {
                axis: Axis::Child,
                to: node_id(cid),
            });
        }
    }
    if let Some((kind, reversed)) = spec.constraint {
        let (before, after) = if reversed { (1, 0) } else { (0, 1) };
        nodes[owner as usize].constraints.push(OrderConstraint {
            before,
            after,
            kind,
        });
    }
    let target_idx = (spec.target_choice as usize) % nodes.len();
    let root_axis = if spec.root_desc {
        Axis::Descendant
    } else {
        Axis::Child
    };
    Query::new(nodes, root_axis, QueryNodeId::from_index(target_idx)).ok()
}

fn node_id(raw: u32) -> QueryNodeId {
    QueryNodeId::from_index(raw as usize)
}

// ---------------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimized_matches_naive(doc_spec in arb_doc(), q_spec in arb_query()) {
        let doc = build_doc(&doc_spec);
        let query = match build_query(&q_spec) {
            Some(q) => q,
            None => return Ok(()),
        };
        let order = DocOrder::new(&doc);
        let fast = evaluate(&doc, &order, &query);
        let naive = naive_match_sets(&doc, &order, &query);
        for (i, naive_set) in naive.iter().enumerate() {
            let fast_set: HashSet<NodeId> = fast.match_sets[i].iter().copied().collect();
            prop_assert_eq!(
                &fast_set, naive_set,
                "query {} node {} (doc {:?})", query, i, xpe_xml::to_string(&doc)
            );
        }
    }

    #[test]
    fn display_round_trip_is_semantically_equivalent(
        doc_spec in arb_doc(),
        q_spec in arb_query(),
    ) {
        let doc = build_doc(&doc_spec);
        let query = match build_query(&q_spec) {
            Some(q) => q,
            None => return Ok(()),
        };
        let rendered = query.to_string();
        let reparsed = parse_query(&rendered).expect("display output parses");
        let order = DocOrder::new(&doc);
        let r1 = evaluate(&doc, &order, &query);
        let r2 = evaluate(&doc, &order, &reparsed);
        // Same target match set (node numbering may differ).
        let t1: HashSet<NodeId> = r1.target_matches(&query).iter().copied().collect();
        let t2: HashSet<NodeId> = r2.target_matches(&reparsed).iter().copied().collect();
        prop_assert_eq!(t1, t2, "query {} rendered {}", query, rendered);
    }
}
