//! Canonical string rendering of queries.
//!
//! `Display` produces a string in the grammar of [`crate::parse_query`] that
//! parses back to a *semantically equivalent* query (same match sets, same
//! target) — a property-tested invariant. The rendering is canonical rather
//! than source-faithful: `preceding(-sibling)` constraints are emitted in
//! their `foll(s)::` orientation, and branch order may differ from the
//! original text.

use std::fmt;

use crate::ast::{constraint_chains, Axis, OrderKind, Query, QueryNodeId};

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.root_axis() {
            Axis::Child => write!(f, "/")?,
            _ => write!(f, "//")?,
        }
        // The parser defaults the target to the last node of the top-level
        // path; omit the `$` marker when it would be redundant.
        let mark_target = self.target() != default_target(self);
        write_node(self, self.root(), true, mark_target, f)
    }
}

/// The node the parser would pick as target if no `$` marker is present:
/// follow the rendered spine (last unchained edge) from the root.
fn default_target(q: &Query) -> QueryNodeId {
    let mut cur = q.root();
    loop {
        let node = q.node(cur);
        let chains = constraint_chains(node);
        let mut chained = vec![false; node.edges.len()];
        for (_, chain) in &chains {
            for &e in chain {
                chained[e] = true;
            }
        }
        match (0..node.edges.len()).rev().find(|&i| !chained[i]) {
            Some(i) => cur = node.edges[i].to,
            None => return cur,
        }
    }
}

/// Renders `id` and its subtree. When `allow_spine` is set, one edge may be
/// rendered as a path continuation (`/x` / `//x`); otherwise every edge
/// becomes a predicate, which is required for chain elements so that a
/// subsequent `folls::` attaches to the element itself.
fn write_node(
    q: &Query,
    id: QueryNodeId,
    allow_spine: bool,
    mark_target: bool,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    let node = q.node(id);
    if mark_target && id == q.target() {
        write!(f, "$")?;
    }
    write!(f, "{}", node.tag)?;

    let chains = constraint_chains(node);
    let chained: Vec<bool> = {
        let mut v = vec![false; node.edges.len()];
        for (_, chain) in &chains {
            for &e in chain {
                v[e] = true;
            }
        }
        v
    };

    // Spine: the last unchained edge, when permitted.
    let spine = if allow_spine {
        (0..node.edges.len()).rev().find(|&i| !chained[i])
    } else {
        None
    };

    // Unchained, non-spine edges become plain predicates.
    for (i, edge) in node.edges.iter().enumerate() {
        if chained[i] || Some(i) == spine {
            continue;
        }
        write!(f, "[{}", axis_str(edge.axis))?;
        write_node(q, edge.to, true, mark_target, f)?;
        write!(f, "]")?;
    }

    // Each chain becomes one predicate: head, then folls::/foll:: hops.
    for (kind, chain) in &chains {
        let connector = match kind {
            OrderKind::Sibling => "/folls::",
            OrderKind::Document => "/foll::",
        };
        let head = node.edges[chain[0]];
        write!(f, "[{}", axis_str(head.axis))?;
        write_node(q, head.to, false, mark_target, f)?;
        for &e in &chain[1..] {
            write!(f, "{connector}")?;
            write_node(q, node.edges[e].to, false, mark_target, f)?;
        }
        write!(f, "]")?;
    }

    if let Some(i) = spine {
        let edge = node.edges[i];
        write!(f, "{}", axis_str(edge.axis))?;
        write_node(q, edge.to, true, mark_target, f)?;
    }
    Ok(())
}

fn axis_str(axis: Axis) -> &'static str {
    match axis {
        Axis::Child => "/",
        Axis::Descendant => "//",
        // Chain connectors are emitted by the caller; structural edges into
        // chains are Child (sibling) or Descendant (document).
        _ => unreachable!("structural edges only"),
    }
}

#[cfg(test)]
mod tests {
    use crate::parse::parse_query;

    /// Parse → display → parse must preserve the node count, target tag and
    /// constraint count (full semantic equivalence is property-tested
    /// against the evaluator in `tests/proptest_eval.rs`).
    fn round(s: &str) -> String {
        let q = parse_query(s).unwrap();
        let rendered = q.to_string();
        let q2 = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("rendered {rendered:?} failed to parse: {e}"));
        assert_eq!(q.len(), q2.len(), "{rendered}");
        assert_eq!(q.node(q.target()).tag, q2.node(q2.target()).tag);
        let c1: usize = q.node_ids().map(|n| q.node(n).constraints.len()).sum();
        let c2: usize = q2.node_ids().map(|n| q2.node(n).constraints.len()).sum();
        assert_eq!(c1, c2);
        rendered
    }

    #[test]
    fn simple_paths_round_trip_verbatim() {
        assert_eq!(round("/Root/A/B"), "/Root/A/B");
        assert_eq!(round("//A//C"), "//A//C");
    }

    #[test]
    fn branch_queries_round_trip() {
        assert_eq!(round("//A[/C/F]/B/D"), "//A[/C/F]/B/D");
        round("//A[/B[/C][/D]]/E");
    }

    #[test]
    fn order_queries_round_trip() {
        // Chain elements render their subtrees as predicates so that the
        // connector re-attaches to the element itself.
        assert_eq!(round("//A[/C/folls::B/D]"), "//A[/C/folls::B[/D]]");
        round("//A[/C[/F]/folls::$B/D]");
        round("//A[/C/foll::D]");
    }

    #[test]
    fn preceding_is_canonicalized_to_following() {
        let rendered = round("//A[/C/pres::B]");
        assert!(rendered.contains("folls::"), "{rendered}");
        assert!(!rendered.contains("pres::"), "{rendered}");
    }

    #[test]
    fn target_marker_preserved() {
        let rendered = round("//A[/$C/F]/B");
        assert!(rendered.contains("$C"), "{rendered}");
    }

    #[test]
    fn chained_constraints_round_trip() {
        round("//A[/B/folls::C/folls::D]");
    }
}
