//! Parser for the paper's XPath subset.
//!
//! Grammar (whitespace-insensitive between tokens):
//!
//! ```text
//! query     := ('/' | '//') steps
//! steps     := step ( sep step )*
//! sep       := '/' | '//'
//! step      := [ axis '::' ] [ '$' ] name predicate*
//! axis      := 'folls' | 'pres' | 'foll' | 'prec'
//!            | 'following-sibling' | 'preceding-sibling'
//!            | 'following' | 'preceding' | 'child' | 'descendant'
//! predicate := '[' [ sep ] steps ']'
//! ```
//!
//! `$` marks the *target* node (the paper "explicitly specifies the target
//! node"; the marker is ours). Without a marker, the last node of the
//! top-level path is the target — matching the paper's default of
//! estimating the final step.
//!
//! Order axes are normalized at lowering time into [`OrderConstraint`]s on
//! the owning (parent) step, exactly as §5 of the paper frames them:
//! `//A[/C/folls::B]` becomes node `A` with child edges to `C` and `B` and a
//! sibling constraint *C before B*.

use std::fmt;

use crate::ast::{
    Axis, OrderConstraint, OrderKind, Query, QueryEdge, QueryError, QueryNode, QueryNodeId,
};

/// Position-annotated query parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Failure category.
    pub kind: QueryParseErrorKind,
}

/// The category of a [`QueryParseError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryParseErrorKind {
    /// Query must start with `/` or `//`.
    MissingLeadingSlash,
    /// A step name was expected.
    ExpectedName,
    /// An unknown axis name appeared before `::`.
    UnknownAxis(String),
    /// Order axes must be introduced with `/`, not `//`.
    OrderAxisAfterDescendant,
    /// A `]` or end-of-input was expected.
    Expected(char),
    /// Trailing characters after the query.
    TrailingInput,
    /// A structural error found while assembling the query.
    Query(QueryError),
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath parse error at byte {}: ", self.offset)?;
        match &self.kind {
            QueryParseErrorKind::MissingLeadingSlash => {
                write!(f, "query must start with '/' or '//'")
            }
            QueryParseErrorKind::ExpectedName => write!(f, "expected a step name"),
            QueryParseErrorKind::UnknownAxis(a) => write!(f, "unknown axis '{a}'"),
            QueryParseErrorKind::OrderAxisAfterDescendant => {
                write!(f, "order axes must be introduced with '/', not '//'")
            }
            QueryParseErrorKind::Expected(c) => write!(f, "expected {c:?}"),
            QueryParseErrorKind::TrailingInput => write!(f, "unexpected trailing input"),
            QueryParseErrorKind::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryParseError {}

/// Parses a query string.
///
/// # Examples
///
/// ```
/// use xpe_xpath::parse_query;
///
/// // The paper's branch query Q1 (Example 4.1).
/// let q1 = parse_query("//A[/C/F]/B/D").unwrap();
/// assert_eq!(q1.len(), 5);
///
/// // The paper's order query Q̃1 (Example 5.1), with explicit target B.
/// let q2 = parse_query("//A[/C[/F]/folls::$B/D]").unwrap();
/// assert!(q2.has_order_constraints());
/// assert_eq!(q2.node(q2.target()).tag, "B");
/// ```
pub fn parse_query(input: &str) -> Result<Query, QueryParseError> {
    let mut p = QueryParser {
        bytes: input.as_bytes(),
        pos: 0,
        nodes: Vec::new(),
        target: None,
    };
    let root_axis = p.leading_sep()?;
    let last = p.steps(None)?;
    if p.pos < p.bytes.len() {
        return Err(p.err(QueryParseErrorKind::TrailingInput));
    }
    let target = p.target.unwrap_or(last);
    let offset = p.pos;
    Query::new(p.nodes, root_axis, target).map_err(|e| QueryParseError {
        offset,
        kind: QueryParseErrorKind::Query(e),
    })
}

/// Axis parsed in front of a step name.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum StepAxis {
    Structural(Axis), // Child or Descendant
    Order(Axis),      // the four order-based axes
}

struct QueryParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    nodes: Vec<QueryNode>,
    target: Option<QueryNodeId>,
}

impl<'a> QueryParser<'a> {
    fn err(&self, kind: QueryParseErrorKind) -> QueryParseError {
        QueryParseError {
            offset: self.pos,
            kind,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn leading_sep(&mut self) -> Result<Axis, QueryParseError> {
        self.skip_ws();
        match self.sep() {
            Some(a) => Ok(a),
            None => Err(self.err(QueryParseErrorKind::MissingLeadingSlash)),
        }
    }

    /// Consumes `/` or `//` if present.
    fn sep(&mut self) -> Option<Axis> {
        self.skip_ws();
        if self.peek() == Some(b'/') {
            self.pos += 1;
            if self.peek() == Some(b'/') {
                self.pos += 1;
                Some(Axis::Descendant)
            } else {
                Some(Axis::Child)
            }
        } else {
            None
        }
    }

    fn name(&mut self) -> Result<String, QueryParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.') || c >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err(QueryParseErrorKind::ExpectedName));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    /// Parses an optional `axis::` prefix plus the step name and target
    /// marker; `structural` is the `/` vs `//` separator that preceded.
    fn step_head(&mut self, structural: Axis) -> Result<(StepAxis, String), QueryParseError> {
        self.skip_ws();
        let mark_target_early = if self.peek() == Some(b'$') {
            self.pos += 1;
            true
        } else {
            false
        };
        let first = self.name()?;
        self.skip_ws();
        let (axis, name, marked) = if self.bytes[self.pos..].starts_with(b"::") {
            if mark_target_early {
                // `$folls::B` is ambiguous; require `$` on the name.
                return Err(self.err(QueryParseErrorKind::ExpectedName));
            }
            self.pos += 2;
            let axis = match first.as_str() {
                "folls" | "following-sibling" => StepAxis::Order(Axis::FollowingSibling),
                "pres" | "preceding-sibling" => StepAxis::Order(Axis::PrecedingSibling),
                "foll" | "following" => StepAxis::Order(Axis::Following),
                "prec" | "preceding" => StepAxis::Order(Axis::Preceding),
                "child" => StepAxis::Structural(Axis::Child),
                "descendant" => StepAxis::Structural(Axis::Descendant),
                other => return Err(self.err(QueryParseErrorKind::UnknownAxis(other.to_owned()))),
            };
            if matches!(axis, StepAxis::Order(_)) && structural == Axis::Descendant {
                return Err(self.err(QueryParseErrorKind::OrderAxisAfterDescendant));
            }
            self.skip_ws();
            let marked = if self.peek() == Some(b'$') {
                self.pos += 1;
                true
            } else {
                false
            };
            (axis, self.name()?, marked)
        } else {
            (StepAxis::Structural(structural), first, mark_target_early)
        };
        if marked {
            if self.target.is_some() {
                return Err(self.err(QueryParseErrorKind::Query(QueryError::MultipleTargets)));
            }
            // The marked node is created by the caller immediately after
            // this returns, so its id is the current node count.
            self.target = Some(QueryNodeId(self.nodes.len() as u32));
        }
        Ok((axis, name))
    }

    fn new_node(&mut self, tag: String) -> QueryNodeId {
        let id = QueryNodeId(self.nodes.len() as u32);
        self.nodes.push(QueryNode {
            tag,
            edges: Vec::new(),
            constraints: Vec::new(),
        });
        id
    }

    fn attach(&mut self, parent: QueryNodeId, axis: Axis, child: QueryNodeId) -> usize {
        let edges = &mut self.nodes[parent.index()].edges;
        edges.push(QueryEdge { axis, to: child });
        edges.len() - 1
    }

    /// Parses a step sequence. `ctx` is the node the first step attaches to
    /// (`None` at top level, where the first node becomes the query root).
    /// Returns the last main-path node.
    fn steps(&mut self, ctx: Option<(QueryNodeId, Axis)>) -> Result<QueryNodeId, QueryParseError> {
        // State for order-axis lowering: the current node, plus its owner
        // and the index of its incoming edge in the owner's edge list.
        let (mut cur, mut owner): (QueryNodeId, Option<(QueryNodeId, usize)>);

        let first_structural = match ctx {
            Some((_, axis)) => axis,
            None => Axis::Child, // placeholder; top-level root axis handled by caller
        };
        let (axis, name) = self.step_head(first_structural)?;
        match axis {
            StepAxis::Structural(a) => {
                let id = self.new_node(name);
                owner = ctx.map(|(parent, _)| (parent, self.attach(parent, a, id)));
                cur = id;
            }
            StepAxis::Order(_) => {
                return Err(self.err(QueryParseErrorKind::Query(
                    QueryError::OrderAxisWithoutOwner,
                )));
            }
        }
        self.predicates(cur)?;

        while let Some(sep_axis) = self.sep() {
            let (axis, name) = self.step_head(sep_axis)?;
            match axis {
                StepAxis::Structural(a) => {
                    let id = self.new_node(name);
                    owner = Some((cur, self.attach(cur, a, id)));
                    cur = id;
                }
                StepAxis::Order(order_axis) => {
                    let (own, cur_edge) = owner.ok_or_else(|| {
                        self.err(QueryParseErrorKind::Query(
                            QueryError::OrderAxisWithoutOwner,
                        ))
                    })?;
                    let id = self.new_node(name);
                    let (edge_axis, kind) = match order_axis {
                        Axis::FollowingSibling | Axis::PrecedingSibling => {
                            (Axis::Child, OrderKind::Sibling)
                        }
                        Axis::Following | Axis::Preceding => {
                            (Axis::Descendant, OrderKind::Document)
                        }
                        _ => unreachable!("structural axes handled above"),
                    };
                    let new_edge = self.attach(own, edge_axis, id);
                    let (before, after) = match order_axis {
                        Axis::FollowingSibling | Axis::Following => (cur_edge, new_edge),
                        _ => (new_edge, cur_edge),
                    };
                    self.nodes[own.index()].constraints.push(OrderConstraint {
                        before,
                        after,
                        kind,
                    });
                    owner = Some((own, new_edge));
                    cur = id;
                }
            }
            self.predicates(cur)?;
        }
        Ok(cur)
    }

    fn predicates(&mut self, node: QueryNodeId) -> Result<(), QueryParseError> {
        loop {
            self.skip_ws();
            if self.peek() != Some(b'[') {
                return Ok(());
            }
            self.pos += 1;
            let axis = self.sep().unwrap_or(Axis::Child);
            self.steps(Some((node, axis)))?;
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
            } else {
                return Err(self.err(QueryParseErrorKind::Expected(']')));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::constraint_chains;

    #[test]
    fn simple_path() {
        let q = parse_query("/Root/A/B").unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.root_axis(), Axis::Child);
        assert_eq!(q.node(q.target()).tag, "B");
        assert_eq!(q.node(q.root()).edges[0].axis, Axis::Child);
    }

    #[test]
    fn descendant_path() {
        let q = parse_query("//A//C").unwrap();
        assert_eq!(q.root_axis(), Axis::Descendant);
        assert_eq!(q.node(q.root()).edges[0].axis, Axis::Descendant);
    }

    #[test]
    fn branch_query_paper_q1() {
        // //A[/C/F]/B/D : A has two edges (C, B); C has F, B has D.
        let q = parse_query("//A[/C/F]/B/D").unwrap();
        assert_eq!(q.len(), 5);
        let a = q.node(q.root());
        assert_eq!(a.tag, "A");
        assert_eq!(a.edges.len(), 2);
        assert_eq!(q.node(a.edges[0].to).tag, "C");
        assert_eq!(q.node(a.edges[1].to).tag, "B");
        // Default target: last node of top-level path = D.
        assert_eq!(q.node(q.target()).tag, "D");
    }

    #[test]
    fn bare_name_predicate_means_child() {
        let q = parse_query("//A[B]/C").unwrap();
        let a = q.node(q.root());
        assert_eq!(a.edges[0].axis, Axis::Child);
        assert_eq!(q.node(a.edges[0].to).tag, "B");
    }

    #[test]
    fn following_sibling_lowered_to_constraint() {
        let q = parse_query("//A[/C/folls::B/D]").unwrap();
        let a = q.node(q.root());
        assert_eq!(a.edges.len(), 2);
        assert_eq!(a.constraints.len(), 1);
        let c = a.constraints[0];
        assert_eq!(c.kind, OrderKind::Sibling);
        assert_eq!(q.node(a.edges[c.before].to).tag, "C");
        assert_eq!(q.node(a.edges[c.after].to).tag, "B");
        // D hangs below B.
        let b = q.node(a.edges[c.after].to);
        assert_eq!(q.node(b.edges[0].to).tag, "D");
    }

    #[test]
    fn preceding_sibling_reverses_direction() {
        let q = parse_query("//A[/C/pres::B]").unwrap();
        let a = q.node(q.root());
        let c = a.constraints[0];
        assert_eq!(c.kind, OrderKind::Sibling);
        assert_eq!(q.node(a.edges[c.before].to).tag, "B");
        assert_eq!(q.node(a.edges[c.after].to).tag, "C");
    }

    #[test]
    fn following_axis_lowered_to_document_constraint() {
        let q = parse_query("//A[/C/foll::D]").unwrap();
        let a = q.node(q.root());
        let c = a.constraints[0];
        assert_eq!(c.kind, OrderKind::Document);
        assert_eq!(a.edges[c.after].axis, Axis::Descendant);
        assert_eq!(q.node(a.edges[c.after].to).tag, "D");
    }

    #[test]
    fn preceding_axis_lowered_reversed() {
        let q = parse_query("//A[/C/prec::D]").unwrap();
        let a = q.node(q.root());
        let c = a.constraints[0];
        assert_eq!(c.kind, OrderKind::Document);
        assert_eq!(q.node(a.edges[c.before].to).tag, "D");
        assert_eq!(q.node(a.edges[c.after].to).tag, "C");
    }

    #[test]
    fn long_axis_names_accepted() {
        let q = parse_query("//A[/C/following-sibling::B]").unwrap();
        assert!(q.has_order_constraints());
        let q2 = parse_query("//A[/C/preceding-sibling::B]").unwrap();
        assert!(q2.has_order_constraints());
    }

    #[test]
    fn explicit_target_marker() {
        let q = parse_query("//A[/$C/F]/B/D").unwrap();
        assert_eq!(q.node(q.target()).tag, "C");
        let q2 = parse_query("//A[/C[/F]/folls::$B/D]").unwrap();
        assert_eq!(q2.node(q2.target()).tag, "B");
    }

    #[test]
    fn chained_order_axes() {
        let q = parse_query("//A[/B/folls::C/folls::D]").unwrap();
        let a = q.node(q.root());
        assert_eq!(a.constraints.len(), 2);
        let chains = constraint_chains(a);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].1.len(), 3);
    }

    #[test]
    fn nested_predicates() {
        let q = parse_query("//A[/B[/C][/D]]/E").unwrap();
        assert_eq!(q.len(), 5);
        let a = q.node(q.root());
        let b = q.node(a.edges[0].to);
        assert_eq!(b.edges.len(), 2);
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            parse_query("A/B").unwrap_err().kind,
            QueryParseErrorKind::MissingLeadingSlash
        ));
        assert!(matches!(
            parse_query("//A[").unwrap_err().kind,
            QueryParseErrorKind::ExpectedName
        ));
        assert!(matches!(
            parse_query("//A[/B").unwrap_err().kind,
            QueryParseErrorKind::Expected(']')
        ));
        assert!(matches!(
            parse_query("//A]").unwrap_err().kind,
            QueryParseErrorKind::TrailingInput
        ));
        assert!(matches!(
            parse_query("//bogus::A").unwrap_err().kind,
            QueryParseErrorKind::UnknownAxis(_)
        ));
        assert!(matches!(
            parse_query("//folls::A").unwrap_err().kind,
            QueryParseErrorKind::Query(QueryError::OrderAxisWithoutOwner)
        ));
        assert!(matches!(
            parse_query("//A//folls::B").unwrap_err().kind,
            QueryParseErrorKind::OrderAxisAfterDescendant
        ));
    }

    #[test]
    fn order_axis_at_top_level_with_owner() {
        // /Root/C/folls::B — owner of C is Root, so this lowers fine.
        let q = parse_query("/Root/C/folls::B").unwrap();
        let root = q.node(q.root());
        assert_eq!(root.edges.len(), 2);
        assert_eq!(root.constraints.len(), 1);
        assert_eq!(q.node(q.target()).tag, "B");
    }

    #[test]
    fn whitespace_tolerated() {
        let q = parse_query(" //A[ /C / folls::B ] / D ").unwrap();
        assert_eq!(q.len(), 4);
    }
}
