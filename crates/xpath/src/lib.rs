//! XPath twig-query subset with order-based axes: parser, AST and an exact
//! evaluator.
//!
//! The ICDE'06 estimation system targets XPath expressions of the form
//! `q1[/q2]/q3` and `q1[/q2/folls::q3]` (and their `pres`/`foll`/`prec`
//! variants). This crate models those queries as twig patterns
//! ([`Query`]) whose branching nodes may carry [`OrderConstraint`]s, parses
//! the paper's textual syntax ([`parse_query`]), and evaluates queries
//! *exactly* ([`selectivity`], [`evaluate`], [`Evaluator`]) — the oracle
//! against which every estimate in the experiments is scored.
//!
//! # Example
//!
//! ```
//! use xpe_xml::{parse_document, nav::DocOrder};
//! use xpe_xpath::{parse_query, selectivity};
//!
//! let doc = parse_document(
//!     "<Root><A><B/><C/></A><A><C/><B/></A></Root>").unwrap();
//! let order = DocOrder::new(&doc);
//!
//! // How many A elements have a B child followed by a C sibling?
//! let q = parse_query("//$A[/B/folls::C]").unwrap();
//! assert_eq!(selectivity(&doc, &order, &q), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod display;
mod eval;
mod parse;

pub use ast::{
    constraint_chains, Axis, OrderConstraint, OrderKind, Query, QueryEdge, QueryError, QueryNode,
    QueryNodeId,
};
pub use eval::{evaluate, selectivity, EvalResult, Evaluator};
pub use parse::{parse_query, QueryParseError, QueryParseErrorKind};
