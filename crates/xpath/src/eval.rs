//! Exact twig-query evaluation.
//!
//! This is the ground-truth oracle the experiments compare estimates
//! against: given a document and a [`Query`], it computes the *exact* match
//! set of every query node (in particular the target's selectivity).
//!
//! # Algorithm
//!
//! Two passes over the query tree:
//!
//! 1. **Bottom-up**: for each query node `q` (children first) compute
//!    `B(q)` — document nodes with `q`'s tag whose subtree can embed `q`'s
//!    subtree, including the order-constraint chains at `q`.
//! 2. **Top-down**: starting from the root (filtered by the query's root
//!    axis), refine each `B` set to `R(q)` — the nodes that participate in
//!    at least one *full* embedding. At a constrained node, the refinement
//!    keeps exactly the *usable* candidates of each chain position:
//!    those for which the chain prefix can still be placed strictly before
//!    and the suffix strictly after.
//!
//! Chains make this exact: feasibility and usability of a chain of
//! candidate sets under a total order (sibling position) or the
//! document-order partial order (`pre`/`post` dominance) are computed with
//! forward/backward greedy sweeps — `O(n log n)` per owner match instead of
//! backtracking.

use std::collections::HashMap;

use xpe_xml::{nav::DocOrder, Document, NodeId};

use crate::ast::{constraint_chains, Axis, OrderKind, Query, QueryNode};

/// Match sets of every query node after full evaluation.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// `match_sets[q.index()]` lists, in document order, the nodes to which
    /// query node `q` maps in at least one full embedding.
    pub match_sets: Vec<Vec<NodeId>>,
}

impl EvalResult {
    /// Match set of the query's target node.
    pub fn target_matches<'s>(&'s self, query: &Query) -> &'s [NodeId] {
        &self.match_sets[query.target().index()]
    }
}

/// Counts the exact selectivity of the query's target node.
pub fn selectivity(doc: &Document, order: &DocOrder, query: &Query) -> u64 {
    evaluate(doc, order, query).target_matches(query).len() as u64
}

/// Evaluates `query` against `doc`, returning all match sets.
pub fn evaluate(doc: &Document, order: &DocOrder, query: &Query) -> EvalResult {
    Evaluator::new(doc, order).run(query)
}

/// Reusable evaluation context: per-tag node lists and subtree extents are
/// computed once per document and shared across many queries (the workload
/// generator evaluates thousands).
pub struct Evaluator<'d> {
    doc: &'d Document,
    order: &'d DocOrder,
    /// Document nodes per tag id, ascending (= document order, because node
    /// ids are assigned in pre-order).
    by_tag: Vec<Vec<NodeId>>,
    /// `subtree_end[i]` is one past the last arena index of `i`'s subtree.
    subtree_end: Vec<u32>,
}

impl<'d> Evaluator<'d> {
    /// Builds the context for a document.
    pub fn new(doc: &'d Document, order: &'d DocOrder) -> Self {
        let mut by_tag = vec![Vec::new(); doc.tags().len()];
        for id in doc.node_ids() {
            by_tag[doc.tag(id).index()].push(id);
        }
        let n = doc.len();
        let mut subtree_end: Vec<u32> = (1..=n as u32).collect();
        // Children have larger arena indices than parents, so a reverse scan
        // accumulates subtree extents in one pass.
        for i in (0..n).rev() {
            let id = NodeId::from_index(i);
            if let Some(&last) = doc.children(id).last() {
                subtree_end[i] = subtree_end[last.index()];
            }
        }
        Evaluator {
            doc,
            order,
            by_tag,
            subtree_end,
        }
    }

    /// Runs the two-pass evaluation.
    pub fn run(&self, query: &Query) -> EvalResult {
        let b_sets = self.bottom_up(query);
        let match_sets = self.top_down(query, &b_sets);
        EvalResult { match_sets }
    }

    /// Exact selectivity of the target using this context.
    pub fn selectivity(&self, query: &Query) -> u64 {
        self.run(query).target_matches(query).len() as u64
    }

    fn tag_nodes(&self, tag: &str) -> &[NodeId] {
        self.doc
            .tags()
            .get(tag)
            .map(|t| self.by_tag[t.index()].as_slice())
            .unwrap_or(&[])
    }

    /// Candidates of `child_b` under `d` for the given axis; `buckets` is
    /// the child-axis parent index of `child_b`.
    fn edge_candidates<'a>(
        &self,
        d: NodeId,
        axis: Axis,
        child_b: &'a [NodeId],
        buckets: &'a HashMap<NodeId, Vec<NodeId>>,
    ) -> &'a [NodeId] {
        match axis {
            Axis::Child => buckets.get(&d).map(Vec::as_slice).unwrap_or(&[]),
            Axis::Descendant => {
                let lo = child_b.partition_point(|&c| c.index() <= d.index());
                let hi =
                    child_b.partition_point(|&c| (c.index() as u32) < self.subtree_end[d.index()]);
                &child_b[lo..hi]
            }
            _ => unreachable!("structural edges only"),
        }
    }

    fn bottom_up(&self, query: &Query) -> Vec<Vec<NodeId>> {
        let mut b_sets: Vec<Vec<NodeId>> = vec![Vec::new(); query.len()];
        for qid in query.node_ids().rev() {
            let qnode = query.node(qid);
            let candidates = self.tag_nodes(&qnode.tag);
            if qnode.edges.is_empty() {
                b_sets[qid.index()] = candidates.to_vec();
                continue;
            }
            let buckets = self.child_buckets(qnode, &b_sets);
            let chains = constraint_chains(qnode);
            let in_chain = chain_membership(qnode, &chains);
            let mut keep = Vec::new();
            'cand: for &d in candidates {
                // Unchained edges: each just needs a candidate.
                for (i, edge) in qnode.edges.iter().enumerate() {
                    if in_chain[i] {
                        continue;
                    }
                    if self
                        .edge_candidates(d, edge.axis, &b_sets[edge.to.index()], &buckets[i])
                        .is_empty()
                    {
                        continue 'cand;
                    }
                }
                // Chains: forward greedy feasibility.
                for (kind, chain) in &chains {
                    let sets: Vec<&[NodeId]> = chain
                        .iter()
                        .map(|&e| {
                            let edge = qnode.edges[e];
                            self.edge_candidates(
                                d,
                                edge.axis,
                                &b_sets[edge.to.index()],
                                &buckets[e],
                            )
                        })
                        .collect();
                    if !self.chain_feasible(*kind, d, &sets) {
                        continue 'cand;
                    }
                }
                keep.push(d);
            }
            b_sets[qid.index()] = keep;
        }
        b_sets
    }

    /// For each child-axis edge, buckets the child's B set by parent.
    fn child_buckets(
        &self,
        qnode: &QueryNode,
        b_sets: &[Vec<NodeId>],
    ) -> Vec<HashMap<NodeId, Vec<NodeId>>> {
        qnode
            .edges
            .iter()
            .map(|edge| {
                let mut m: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
                if edge.axis == Axis::Child {
                    for &c in &b_sets[edge.to.index()] {
                        if let Some(p) = self.doc.parent(c) {
                            m.entry(p).or_default().push(c);
                        }
                    }
                }
                m
            })
            .collect()
    }

    fn top_down(&self, query: &Query, b_sets: &[Vec<NodeId>]) -> Vec<Vec<NodeId>> {
        let mut r_sets: Vec<Vec<NodeId>> = vec![Vec::new(); query.len()];
        r_sets[query.root().index()] = match query.root_axis() {
            Axis::Child => b_sets[query.root().index()]
                .iter()
                .copied()
                .filter(|&d| d == self.doc.root())
                .collect(),
            _ => b_sets[query.root().index()].clone(),
        };
        // Marks to deduplicate the union over owner matches.
        let mut mark = vec![u32::MAX; self.doc.len()];
        for qid in query.node_ids() {
            let qnode = query.node(qid);
            if qnode.edges.is_empty() {
                continue;
            }
            let buckets = self.child_buckets(qnode, b_sets);
            let chains = constraint_chains(qnode);
            let in_chain = chain_membership(qnode, &chains);
            for (i, edge) in qnode.edges.iter().enumerate() {
                if in_chain[i] {
                    continue;
                }
                let child = edge.to.index();
                let stamp = (qid.index() * query.len() + i) as u32;
                let mut out = Vec::new();
                for &m in &r_sets[qid.index()] {
                    for &c in self.edge_candidates(m, edge.axis, &b_sets[child], &buckets[i]) {
                        if mark[c.index()] != stamp {
                            mark[c.index()] = stamp;
                            out.push(c);
                        }
                    }
                }
                out.sort_unstable();
                r_sets[child] = out;
            }
            // Chains: usable candidates per position.
            for (kind, chain) in &chains {
                let mut outs: Vec<Vec<NodeId>> = vec![Vec::new(); chain.len()];
                for &m in &r_sets[qid.index()] {
                    let sets: Vec<&[NodeId]> = chain
                        .iter()
                        .map(|&e| {
                            let edge = qnode.edges[e];
                            self.edge_candidates(
                                m,
                                edge.axis,
                                &b_sets[edge.to.index()],
                                &buckets[e],
                            )
                        })
                        .collect();
                    let usable = self.chain_usable(*kind, m, &sets);
                    for (t, u) in usable.into_iter().enumerate() {
                        outs[t].extend(u);
                    }
                }
                for (t, &e) in chain.iter().enumerate() {
                    let child = qnode.edges[e].to.index();
                    let mut v = std::mem::take(&mut outs[t]);
                    v.sort_unstable();
                    v.dedup();
                    r_sets[child] = v;
                }
            }
        }
        r_sets
    }

    /// Whether one element per set can be picked in strictly increasing
    /// order (sibling position or document-order dominance).
    fn chain_feasible(&self, kind: OrderKind, owner: NodeId, sets: &[&[NodeId]]) -> bool {
        match kind {
            OrderKind::Sibling => {
                let pos = self.sibling_positions(owner);
                let mut prev: i64 = -1;
                for set in sets {
                    let next = set
                        .iter()
                        .map(|c| pos[c] as i64)
                        .filter(|&p| p > prev)
                        .min();
                    match next {
                        Some(p) => prev = p,
                        None => return false,
                    }
                }
                true
            }
            OrderKind::Document => {
                // Forward dominance sweep; sets are in ascending id = pre
                // order already.
                let mut frontier: Vec<NodeId> = sets[0].to_vec();
                for set in &sets[1..] {
                    frontier = self.dominated_by_some(&frontier, set);
                    if frontier.is_empty() {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Per chain position, the candidates that participate in at least one
    /// valid chain assignment.
    fn chain_usable(&self, kind: OrderKind, owner: NodeId, sets: &[&[NodeId]]) -> Vec<Vec<NodeId>> {
        let k = sets.len();
        match kind {
            OrderKind::Sibling => {
                let pos = self.sibling_positions(owner);
                // Forward minimal placements.
                let mut fmin: Vec<i64> = Vec::with_capacity(k);
                let mut prev: i64 = -1;
                for set in sets {
                    let next = set
                        .iter()
                        .map(|c| pos[c] as i64)
                        .filter(|&p| p > prev)
                        .min();
                    match next {
                        Some(p) => {
                            fmin.push(p);
                            prev = p;
                        }
                        None => return vec![Vec::new(); k],
                    }
                }
                // Backward maximal placements.
                let mut bmax: Vec<i64> = vec![0; k];
                let mut next: i64 = i64::MAX;
                for t in (0..k).rev() {
                    let prevmax = sets[t]
                        .iter()
                        .map(|c| pos[c] as i64)
                        .filter(|&p| p < next)
                        .max();
                    match prevmax {
                        Some(p) => {
                            bmax[t] = p;
                            next = p;
                        }
                        None => return vec![Vec::new(); k],
                    }
                }
                (0..k)
                    .map(|t| {
                        let lo = if t == 0 { -1 } else { fmin[t - 1] };
                        let hi = if t + 1 == k { i64::MAX } else { bmax[t + 1] };
                        sets[t]
                            .iter()
                            .copied()
                            .filter(|c| {
                                let p = pos[c] as i64;
                                p > lo && p < hi
                            })
                            .collect()
                    })
                    .collect()
            }
            OrderKind::Document => {
                // F[t]: candidates reachable from the left; G[t]: from the right.
                let mut f: Vec<Vec<NodeId>> = Vec::with_capacity(k);
                f.push(sets[0].to_vec());
                for t in 1..k {
                    let next = self.dominated_by_some(&f[t - 1], sets[t]);
                    f.push(next);
                }
                let mut g: Vec<Vec<NodeId>> = vec![Vec::new(); k];
                g[k - 1] = sets[k - 1].to_vec();
                for t in (0..k.saturating_sub(1)).rev() {
                    g[t] = self.dominates_some(&g[t + 1], sets[t]);
                }
                (0..k)
                    .map(|t| {
                        let in_g: std::collections::HashSet<NodeId> =
                            g[t].iter().copied().collect();
                        f[t].iter().copied().filter(|c| in_g.contains(c)).collect()
                    })
                    .collect()
            }
        }
    }

    /// Elements of `set` that are document-order-dominated by (strictly
    /// follow) some element of `frontier`.
    fn dominated_by_some(&self, frontier: &[NodeId], set: &[NodeId]) -> Vec<NodeId> {
        // frontier sorted by pre (ascending id); prefix-min of post.
        let pres: Vec<u32> = frontier.iter().map(|&d| self.order.pre(d)).collect();
        let mut prefix_min_post = Vec::with_capacity(frontier.len());
        let mut m = u32::MAX;
        for &d in frontier {
            m = m.min(self.order.post(d));
            prefix_min_post.push(m);
        }
        set.iter()
            .copied()
            .filter(|&c| {
                let i = pres.partition_point(|&p| p < self.order.pre(c));
                i > 0 && prefix_min_post[i - 1] < self.order.post(c)
            })
            .collect()
    }

    /// Elements of `set` that strictly precede some element of `frontier`.
    fn dominates_some(&self, frontier: &[NodeId], set: &[NodeId]) -> Vec<NodeId> {
        let pres: Vec<u32> = frontier.iter().map(|&d| self.order.pre(d)).collect();
        let n = frontier.len();
        let mut suffix_max_post = vec![0u32; n];
        let mut m = 0u32;
        for i in (0..n).rev() {
            m = m.max(self.order.post(frontier[i]));
            suffix_max_post[i] = m;
        }
        set.iter()
            .copied()
            .filter(|&c| {
                let i = pres.partition_point(|&p| p <= self.order.pre(c));
                i < n && suffix_max_post[i] > self.order.post(c)
            })
            .collect()
    }

    fn sibling_positions(&self, owner: NodeId) -> HashMap<NodeId, usize> {
        self.doc
            .children(owner)
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i))
            .collect()
    }
}

fn chain_membership(qnode: &QueryNode, chains: &[(OrderKind, Vec<usize>)]) -> Vec<bool> {
    let mut v = vec![false; qnode.edges.len()];
    for (_, chain) in chains {
        for &e in chain {
            v[e] = true;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use xpe_xml::parse as parse_xml;

    fn fig1() -> Document {
        xpe_xml::fixtures::paper_figure1()
    }

    fn sel(doc: &Document, q: &str) -> u64 {
        let order = DocOrder::new(doc);
        selectivity(doc, &order, &parse_query(q).unwrap())
    }

    #[test]
    fn simple_queries_on_figure1() {
        let doc = fig1();
        assert_eq!(sel(&doc, "//A"), 3);
        assert_eq!(sel(&doc, "//A//C"), 2); // paper Example 4.2
        assert_eq!(sel(&doc, "/Root/A/B"), 4);
        assert_eq!(sel(&doc, "/Root/A/B/D"), 4);
        assert_eq!(sel(&doc, "//E"), 3);
        assert_eq!(sel(&doc, "//Missing"), 0);
    }

    #[test]
    fn branch_queries_on_figure1() {
        let doc = fig1();
        // Q1 = //A[/C/F]/B/D : only the middle A qualifies; its two B/D
        // pairs both count.
        assert_eq!(sel(&doc, "//A[/C/F]/B/D"), 2);
        // Q2 = //C[/E]/F with target E (paper Example 4.3): exact answer 1.
        assert_eq!(sel(&doc, "//C[/$E]/F"), 1);
        // Target C in the same query: exact answer 1.
        assert_eq!(sel(&doc, "//$C[/E]/F"), 1);
    }

    #[test]
    fn root_axis_child_restricts_to_document_root() {
        let doc = fig1();
        assert_eq!(sel(&doc, "/Root"), 1);
        assert_eq!(sel(&doc, "/A"), 0); // A is not the document root
        assert_eq!(sel(&doc, "//Root"), 1);
    }

    #[test]
    fn order_query_paper_example_5_1() {
        let doc = fig1();
        // Q̃1 = //A[/C[/F]/folls::B/D], target B: the middle A has
        // C(E,F) followed by a sibling B(D) — exactly one B, matching the
        // paper's estimate of 1 (Example 5.1).
        assert_eq!(sel(&doc, "//A[/C[/F]/folls::$B/D]"), 1);
        // Without the F condition the last A's trailing B also matches.
        assert_eq!(sel(&doc, "//A[/C/folls::$B/D]"), 2);
        assert_eq!(sel(&doc, "//A[/C/folls::B/$D]"), 2);
    }

    #[test]
    fn preceding_sibling_matches_reversed_order() {
        let doc = fig1();
        // C after some B: only the middle A (the last A's C comes first).
        assert_eq!(sel(&doc, "//A[/B/folls::$C]"), 1);
        // C before some B: middle and last A.
        assert_eq!(sel(&doc, "//A[/B/pres::$C]"), 2);
        // B after C: the middle A's trailing B plus the last A's B.
        assert_eq!(sel(&doc, "//A[/C/folls::$B]"), 2);
    }

    #[test]
    fn following_axis_document_scope() {
        let doc = fig1();
        // //A[/C/foll::D]: D following C within the same A — the middle A's
        // trailing B/D and the last A's B/D.
        assert_eq!(sel(&doc, "//A[/C/foll::$D]"), 2);
        // E following a B within the same A: only the middle A's C/E (the
        // first A's E sits *inside* its B and descendants don't follow).
        assert_eq!(sel(&doc, "//A[/B/foll::$E]"), 1);
        // prec: D preceding C — only the middle A's first B/D (the last A's
        // D comes after its C).
        assert_eq!(sel(&doc, "//A[/C/prec::$D]"), 1);
    }

    #[test]
    fn trunk_target_with_order_constraint() {
        let doc = fig1();
        // Target A: how many As have C followed by a sibling B (with D)?
        assert_eq!(sel(&doc, "//$A[/C/folls::B/D]"), 2);
        assert_eq!(sel(&doc, "//$A[/C/folls::B]"), 2);
        assert_eq!(sel(&doc, "//$A[/B/folls::C]"), 1);
    }

    #[test]
    fn chain_of_three_siblings() {
        let doc = parse_xml("<r><a><x/><y/><z/></a><a><y/><x/><z/></a></r>").unwrap();
        // Only the first `a` has x, then y, then z in order (the second has
        // y before x, so no y follows its x).
        assert_eq!(sel(&doc, "//a[/x/folls::y/folls::$z]"), 1);
        assert_eq!(sel(&doc, "//$a[/x/folls::y/folls::z]"), 1);
        assert_eq!(sel(&doc, "//$a[/y/folls::x/folls::z]"), 1);
        assert_eq!(sel(&doc, "//$a[/z/folls::x]"), 0);
    }

    #[test]
    fn usable_filtering_is_exact() {
        // Two x children; only the first can satisfy "x before y".
        let doc = parse_xml("<r><a><x/><y/><x/></a></r>").unwrap();
        assert_eq!(sel(&doc, "//a[/$x/folls::y]"), 1);
        // Both x's qualify as "after y"? Only the second.
        assert_eq!(sel(&doc, "//a[/y/folls::$x]"), 1);
        // x on either side: pres picks the first.
        assert_eq!(sel(&doc, "//a[/y/pres::$x]"), 1);
    }

    #[test]
    fn deep_target_below_constrained_head() {
        let doc = parse_xml("<r><a><c/><b><d/></b></a><a><b><d/></b><c/></a></r>").unwrap();
        // b after c: first a only; its d counts.
        assert_eq!(sel(&doc, "//a[/c/folls::b/$d]"), 1);
        // b before c: second a; its d counts.
        assert_eq!(sel(&doc, "//a[/c/pres::b/$d]"), 1);
    }

    #[test]
    fn evaluator_reuse_across_queries() {
        let doc = fig1();
        let order = DocOrder::new(&doc);
        let ev = Evaluator::new(&doc, &order);
        assert_eq!(ev.selectivity(&parse_query("//A//C").unwrap()), 2);
        assert_eq!(ev.selectivity(&parse_query("//A[/C/F]/B/D").unwrap()), 2);
        assert_eq!(ev.selectivity(&parse_query("//B/D").unwrap()), 4);
    }

    #[test]
    fn match_sets_are_sorted_and_deduped() {
        let doc = fig1();
        let order = DocOrder::new(&doc);
        let q = parse_query("//A/B/D").unwrap();
        let r = evaluate(&doc, &order, &q);
        for set in &r.match_sets {
            let mut sorted = set.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(&sorted, set);
        }
    }
}

#[cfg(test)]
mod document_chain_tests {
    use super::*;
    use crate::parse::parse_query;
    use xpe_xml::parse as parse_xml;

    fn sel(xml: &str, q: &str) -> u64 {
        let doc = parse_xml(xml).unwrap();
        let order = DocOrder::new(&doc);
        selectivity(&doc, &order, &parse_query(q).unwrap())
    }

    #[test]
    fn following_skips_descendants_and_ancestors() {
        // d inside c is NOT following c; d after c's subtree is.
        let xml = "<r><a><c><d/></c><d/></a></r>";
        assert_eq!(sel(xml, "//a[/c/foll::$d]"), 1);
        // The inner d precedes nothing relative to c.
        assert_eq!(sel(xml, "//a[/c/prec::$d]"), 0);
    }

    #[test]
    fn following_within_owner_subtree_only() {
        // Paper §5 scoping: the second a's d follows the first a's c in
        // document order, but the constraint is owned by `a`, so it
        // does not count.
        let xml = "<r><a><c/></a><a><d/></a></r>";
        assert_eq!(sel(xml, "//a[/c/foll::$d]"), 0);
    }

    #[test]
    fn chained_document_constraints() {
        // c then (somewhere later) m then (later still) z, all within a.
        let xml = "<r>\
            <a><c/><b><m/></b><b><z/></b></a>\
            <a><c/><b><z/></b><b><m/></b></a>\
         </r>";
        assert_eq!(sel(xml, "//$a[/c/foll::m/foll::z]"), 1);
        assert_eq!(sel(xml, "//$a[/c/foll::z/foll::m]"), 1);
    }

    #[test]
    fn document_chain_with_deep_heads() {
        // The moving head is deep below the owner.
        let xml = "<r><a><c/><x><y><d/></y></x></a><a><x><y><d/></y></x><c/></a></r>";
        assert_eq!(sel(xml, "//a[/c/foll::$d]"), 1);
        assert_eq!(sel(xml, "//a[/c/prec::$d]"), 1);
    }
}
