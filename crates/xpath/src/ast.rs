//! Twig-query representation.
//!
//! A [`Query`] is a tree of named steps connected by `child` / `descendant`
//! edges, with *order constraints* attached to branching nodes — the
//! structural form of the paper's
//! `q1[/q2/folls::q3]` / `q1[/q2/pres::q3]` patterns (§5). One node is the
//! *target*: the node whose selectivity is being asked for.
//!
//! Order constraints at a node must form disjoint **chains** over distinct
//! edges of that node (`e1` before `e2` before ...). This covers every query
//! shape the paper defines (a single before/after pair per branching node,
//! or a sequence of them) while keeping exact evaluation tractable.

use std::fmt;

/// An XPath axis supported by the estimation system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/` — parent-child.
    Child,
    /// `//` — ancestor-descendant.
    Descendant,
    /// `following-sibling::` (paper shorthand `folls::`).
    FollowingSibling,
    /// `preceding-sibling::` (paper shorthand `pres::`).
    PrecedingSibling,
    /// `following::` (paper shorthand `foll::`), scoped — as in the paper's
    /// §5 conversion — to the subtree of the query node that owns the
    /// constraint.
    Following,
    /// `preceding::` (paper shorthand `prec::`), scoped like [`Axis::Following`].
    Preceding,
}

impl Axis {
    /// Whether this is one of the four order-based axes.
    pub fn is_order_based(self) -> bool {
        !matches!(self, Axis::Child | Axis::Descendant)
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Axis::Child => "/",
            Axis::Descendant => "//",
            Axis::FollowingSibling => "/folls::",
            Axis::PrecedingSibling => "/pres::",
            Axis::Following => "/foll::",
            Axis::Preceding => "/prec::",
        };
        f.write_str(s)
    }
}

/// Index of a node within a [`Query`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryNodeId(pub(crate) u32);

impl QueryNodeId {
    /// Dense index into [`Query::nodes`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense index — node ids are positions in the
    /// `Vec<QueryNode>` handed to [`Query::new`], so callers assembling
    /// queries programmatically mint ids this way.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        QueryNodeId(u32::try_from(index).expect("query node index overflows u32"))
    }
}

impl fmt::Debug for QueryNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A structural edge of the query tree. Only `Child` and `Descendant` appear
/// here; order axes are normalized into [`OrderConstraint`]s at lowering
/// time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryEdge {
    /// `Child` or `Descendant`.
    pub axis: Axis,
    /// The child query node.
    pub to: QueryNodeId,
}

/// How the two constrained branch heads must relate in the document.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OrderKind {
    /// Heads are siblings (children of the same match of the owner node) and
    /// the `before` head occurs earlier among those siblings
    /// (`following-sibling` / `preceding-sibling`).
    Sibling,
    /// Heads are descendants of the owner match and the `before` head
    /// precedes the `after` head in document order without being its
    /// ancestor (`following` / `preceding`, subtree-scoped per the paper).
    Document,
}

/// An ordering requirement between two edges of the same query node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrderConstraint {
    /// Index (into the owner's edge list) of the branch whose head must
    /// occur first.
    pub before: usize,
    /// Index of the branch whose head must occur later.
    pub after: usize,
    /// Sibling-level or document-order requirement.
    pub kind: OrderKind,
}

/// One step of the query tree.
#[derive(Clone, Debug)]
pub struct QueryNode {
    /// Element tag this step matches (no wildcards: the estimation tables
    /// are keyed by concrete tags).
    pub tag: String,
    /// Outgoing structural edges, in syntactic order.
    pub edges: Vec<QueryEdge>,
    /// Order constraints among this node's edges.
    pub constraints: Vec<OrderConstraint>,
}

/// Errors detected while assembling a [`Query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An order constraint referenced an edge index that does not exist.
    BadEdgeIndex,
    /// A constraint relates an edge to itself.
    SelfConstraint,
    /// Constraints at one node do not form disjoint chains, or mix
    /// [`OrderKind`]s within a chain.
    NotAChain,
    /// A `Sibling` constraint was placed on a non-`Child` edge.
    SiblingNeedsChildEdge,
    /// The query has no nodes.
    Empty,
    /// An order axis appeared where no owner (parent step) exists.
    OrderAxisWithoutOwner,
    /// More than one node was marked as the target.
    MultipleTargets,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QueryError::BadEdgeIndex => "order constraint references a nonexistent edge",
            QueryError::SelfConstraint => "order constraint relates an edge to itself",
            QueryError::NotAChain => {
                "order constraints at a node must form disjoint single-kind chains"
            }
            QueryError::SiblingNeedsChildEdge => {
                "sibling order constraints require child-axis edges"
            }
            QueryError::Empty => "query has no steps",
            QueryError::OrderAxisWithoutOwner => {
                "order axis requires a preceding step with an explicit parent"
            }
            QueryError::MultipleTargets => "query marks more than one target node",
        };
        f.write_str(s)
    }
}

impl std::error::Error for QueryError {}

/// A validated twig query.
#[derive(Clone, Debug)]
pub struct Query {
    nodes: Vec<QueryNode>,
    root_axis: Axis,
    target: QueryNodeId,
}

impl Query {
    /// Assembles and validates a query.
    ///
    /// `root_axis` is the axis connecting the document root to node 0:
    /// `Child` for queries written `/a/...`, `Descendant` for `//a/...`.
    pub fn new(
        nodes: Vec<QueryNode>,
        root_axis: Axis,
        target: QueryNodeId,
    ) -> Result<Self, QueryError> {
        if nodes.is_empty() {
            return Err(QueryError::Empty);
        }
        debug_assert!(matches!(root_axis, Axis::Child | Axis::Descendant));
        for node in &nodes {
            validate_constraints(node)?;
        }
        Ok(Query {
            nodes,
            root_axis,
            target,
        })
    }

    /// The query node matched against the document root's position.
    #[inline]
    pub fn root(&self) -> QueryNodeId {
        QueryNodeId(0)
    }

    /// Axis between the document root and the first step.
    #[inline]
    pub fn root_axis(&self) -> Axis {
        self.root_axis
    }

    /// The node whose selectivity is asked for.
    #[inline]
    pub fn target(&self) -> QueryNodeId {
        self.target
    }

    /// Number of steps.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the query is empty (never true for a validated query).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    #[inline]
    pub fn node(&self, id: QueryNodeId) -> &QueryNode {
        &self.nodes[id.index()]
    }

    /// All nodes, indexable by [`QueryNodeId::index`]. Useful for callers
    /// (like the estimator) that derive modified queries.
    #[inline]
    pub fn nodes(&self) -> &[QueryNode] {
        &self.nodes
    }

    /// Iterate over node ids, parents before children.
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = QueryNodeId> {
        (0..self.nodes.len() as u32).map(QueryNodeId)
    }

    /// The parent of `id` together with the connecting edge index, if any.
    pub fn parent_of(&self, id: QueryNodeId) -> Option<(QueryNodeId, usize)> {
        for p in self.node_ids() {
            if let Some(i) = self.nodes[p.index()].edges.iter().position(|e| e.to == id) {
                return Some((p, i));
            }
        }
        None
    }

    /// True when any node carries an order constraint.
    pub fn has_order_constraints(&self) -> bool {
        self.nodes.iter().any(|n| !n.constraints.is_empty())
    }

    /// Nodes on the path from the query root to `id`, inclusive.
    pub fn path_to(&self, id: QueryNodeId) -> Vec<QueryNodeId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some((p, _)) = self.parent_of(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

/// Checks that a node's constraints form disjoint, kind-homogeneous chains
/// over valid edges.
fn validate_constraints(node: &QueryNode) -> Result<(), QueryError> {
    let n = node.edges.len();
    let mut succ: Vec<Option<usize>> = vec![None; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    for c in &node.constraints {
        if c.before >= n || c.after >= n {
            return Err(QueryError::BadEdgeIndex);
        }
        if c.before == c.after {
            return Err(QueryError::SelfConstraint);
        }
        match c.kind {
            OrderKind::Sibling => {
                if node.edges[c.before].axis != Axis::Child
                    || node.edges[c.after].axis != Axis::Child
                {
                    return Err(QueryError::SiblingNeedsChildEdge);
                }
            }
            OrderKind::Document => {}
        }
        if succ[c.before].is_some() || pred[c.after].is_some() {
            return Err(QueryError::NotAChain);
        }
        succ[c.before] = Some(c.after);
        pred[c.after] = Some(c.before);
    }
    // Reject cycles: follow each chain from its head; every constrained edge
    // must be reached from a head (an edge with no predecessor).
    let mut reached = vec![false; n];
    for (start, p) in pred.iter().enumerate() {
        if p.is_some() {
            continue;
        }
        let mut cur = Some(start);
        let mut kind: Option<OrderKind> = None;
        while let Some(e) = cur {
            reached[e] = true;
            let next = succ[e];
            if let Some(nx) = next {
                let c = node
                    .constraints
                    .iter()
                    .find(|c| c.before == e && c.after == nx)
                    .expect("constraint recorded in succ");
                match kind {
                    None => kind = Some(c.kind),
                    Some(k) if k == c.kind => {}
                    Some(_) => return Err(QueryError::NotAChain),
                }
            }
            cur = next;
        }
    }
    for c in &node.constraints {
        if !reached[c.before] || !reached[c.after] {
            return Err(QueryError::NotAChain); // cycle
        }
    }
    Ok(())
}

/// The chains of order-constrained edges at one query node, in constraint
/// order. Used by both the exact evaluator and the estimator.
pub fn constraint_chains(node: &QueryNode) -> Vec<(OrderKind, Vec<usize>)> {
    let n = node.edges.len();
    let mut succ: Vec<Option<(usize, OrderKind)>> = vec![None; n];
    let mut has_pred = vec![false; n];
    for c in &node.constraints {
        succ[c.before] = Some((c.after, c.kind));
        has_pred[c.after] = true;
    }
    let mut chains = Vec::new();
    for start in 0..n {
        if has_pred[start] || succ[start].is_none() {
            continue;
        }
        let mut chain = vec![start];
        let mut kind = None;
        let mut cur = start;
        while let Some((next, k)) = succ[cur] {
            kind = Some(k);
            chain.push(next);
            cur = next;
        }
        chains.push((kind.expect("chain has at least one constraint"), chain));
    }
    chains
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(tag: &str, edges: Vec<QueryEdge>, constraints: Vec<OrderConstraint>) -> QueryNode {
        QueryNode {
            tag: tag.to_owned(),
            edges,
            constraints,
        }
    }

    fn edge(axis: Axis, to: u32) -> QueryEdge {
        QueryEdge {
            axis,
            to: QueryNodeId(to),
        }
    }

    #[test]
    fn simple_query_validates() {
        let q = Query::new(
            vec![
                node("A", vec![edge(Axis::Child, 1)], vec![]),
                node("B", vec![], vec![]),
            ],
            Axis::Descendant,
            QueryNodeId(1),
        )
        .unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.parent_of(QueryNodeId(1)), Some((QueryNodeId(0), 0)));
        assert!(!q.has_order_constraints());
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            Query::new(vec![], Axis::Child, QueryNodeId(0)).unwrap_err(),
            QueryError::Empty
        );
    }

    #[test]
    fn sibling_constraint_validates() {
        let q = Query::new(
            vec![
                node(
                    "A",
                    vec![edge(Axis::Child, 1), edge(Axis::Child, 2)],
                    vec![OrderConstraint {
                        before: 0,
                        after: 1,
                        kind: OrderKind::Sibling,
                    }],
                ),
                node("C", vec![], vec![]),
                node("B", vec![], vec![]),
            ],
            Axis::Descendant,
            QueryNodeId(2),
        )
        .unwrap();
        assert!(q.has_order_constraints());
        let chains = constraint_chains(q.node(q.root()));
        assert_eq!(chains, vec![(OrderKind::Sibling, vec![0, 1])]);
    }

    #[test]
    fn sibling_constraint_on_descendant_edge_rejected() {
        let err = Query::new(
            vec![
                node(
                    "A",
                    vec![edge(Axis::Descendant, 1), edge(Axis::Child, 2)],
                    vec![OrderConstraint {
                        before: 0,
                        after: 1,
                        kind: OrderKind::Sibling,
                    }],
                ),
                node("C", vec![], vec![]),
                node("B", vec![], vec![]),
            ],
            Axis::Descendant,
            QueryNodeId(2),
        )
        .unwrap_err();
        assert_eq!(err, QueryError::SiblingNeedsChildEdge);
    }

    #[test]
    fn cycle_rejected() {
        let err = Query::new(
            vec![
                node(
                    "A",
                    vec![edge(Axis::Child, 1), edge(Axis::Child, 2)],
                    vec![
                        OrderConstraint {
                            before: 0,
                            after: 1,
                            kind: OrderKind::Sibling,
                        },
                        OrderConstraint {
                            before: 1,
                            after: 0,
                            kind: OrderKind::Sibling,
                        },
                    ],
                ),
                node("C", vec![], vec![]),
                node("B", vec![], vec![]),
            ],
            Axis::Descendant,
            QueryNodeId(2),
        )
        .unwrap_err();
        assert_eq!(err, QueryError::NotAChain);
    }

    #[test]
    fn branching_constraint_rejected() {
        // Two constraints sharing a `before` edge are not a chain.
        let err = Query::new(
            vec![
                node(
                    "A",
                    vec![
                        edge(Axis::Child, 1),
                        edge(Axis::Child, 2),
                        edge(Axis::Child, 3),
                    ],
                    vec![
                        OrderConstraint {
                            before: 0,
                            after: 1,
                            kind: OrderKind::Sibling,
                        },
                        OrderConstraint {
                            before: 0,
                            after: 2,
                            kind: OrderKind::Sibling,
                        },
                    ],
                ),
                node("B", vec![], vec![]),
                node("C", vec![], vec![]),
                node("D", vec![], vec![]),
            ],
            Axis::Descendant,
            QueryNodeId(1),
        )
        .unwrap_err();
        assert_eq!(err, QueryError::NotAChain);
    }

    #[test]
    fn mixed_kind_chain_rejected() {
        let err = Query::new(
            vec![
                node(
                    "A",
                    vec![
                        edge(Axis::Child, 1),
                        edge(Axis::Child, 2),
                        edge(Axis::Child, 3),
                    ],
                    vec![
                        OrderConstraint {
                            before: 0,
                            after: 1,
                            kind: OrderKind::Sibling,
                        },
                        OrderConstraint {
                            before: 1,
                            after: 2,
                            kind: OrderKind::Document,
                        },
                    ],
                ),
                node("B", vec![], vec![]),
                node("C", vec![], vec![]),
                node("D", vec![], vec![]),
            ],
            Axis::Descendant,
            QueryNodeId(1),
        )
        .unwrap_err();
        assert_eq!(err, QueryError::NotAChain);
    }

    #[test]
    fn path_to_walks_spine() {
        let q = Query::new(
            vec![
                node("A", vec![edge(Axis::Child, 1)], vec![]),
                node("B", vec![edge(Axis::Descendant, 2)], vec![]),
                node("C", vec![], vec![]),
            ],
            Axis::Child,
            QueryNodeId(2),
        )
        .unwrap();
        let path = q.path_to(QueryNodeId(2));
        assert_eq!(path, vec![QueryNodeId(0), QueryNodeId(1), QueryNodeId(2)]);
    }

    #[test]
    fn bad_edge_index_rejected() {
        let err = Query::new(
            vec![node(
                "A",
                vec![edge(Axis::Child, 0)],
                vec![OrderConstraint {
                    before: 0,
                    after: 7,
                    kind: OrderKind::Sibling,
                }],
            )],
            Axis::Child,
            QueryNodeId(0),
        )
        .unwrap_err();
        assert_eq!(err, QueryError::BadEdgeIndex);
    }
}
