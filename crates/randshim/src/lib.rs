//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *subset* of rand 0.8's API it actually uses: [`rngs::StdRng`] /
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen` and `gen_range`. The generator is xoshiro256++
//! seeded through SplitMix64 — high-quality and deterministic, but **not**
//! stream-compatible with upstream `StdRng` (upstream is ChaCha12). All
//! workspace corpora and workloads are generated through this shim, so
//! seeds remain reproducible within the repo.
//!
//! If the real crate ever becomes fetchable again, deleting this crate and
//! restoring the registry dependency only changes which pseudo-random
//! streams the seeds name; no API changes are needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Deterministically constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of a [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range`. Panics on an empty range, like upstream.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]` must hold, like
    /// upstream, which panics outside it).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<G: RngCore> Rng for G {}

/// Types samplable uniformly over their full domain (`rng.gen()`).
pub trait Standard {
    /// Draws one value from `g`.
    fn sample<G: RngCore>(g: &mut G) -> Self;
}

impl Standard for f64 {
    fn sample<G: RngCore>(g: &mut G) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (g.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<G: RngCore>(g: &mut G) -> Self {
        (g.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<G: RngCore>(g: &mut G) -> Self {
        g.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<G: RngCore>(g: &mut G) -> Self {
        g.next_u64()
    }
}

impl Standard for u32 {
    fn sample<G: RngCore>(g: &mut G) -> Self {
        g.next_u32()
    }
}

impl Standard for u8 {
    fn sample<G: RngCore>(g: &mut G) -> Self {
        (g.next_u64() >> 56) as u8
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<G: RngCore>(self, g: &mut G) -> T;
}

/// Uniform `u64` below `n` (> 0) by widening multiply — avoids modulo bias
/// well past any span this workspace samples.
fn below<G: RngCore>(g: &mut G, n: u64) -> u64 {
    ((g.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, g: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(g, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, g: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return g.next_u64() as $t;
                }
                (lo as i128 + below(g, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore>(self, g: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(g) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<G: RngCore>(self, g: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(g) * (hi - lo)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ state, seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Xoshiro256 {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for Xoshiro256 {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The workspace's standard generator (stands in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    /// Small fast generator (stands in for rand's `SmallRng`); same engine
    /// as [`StdRng`] here, on a decorrelated stream.
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed ^ 0x5111_9CDE_7C7C_9791))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _ = r.gen_range(5..5);
    }
}
