//! End-to-end integration: dataset generation → labeling → summaries →
//! estimation → accuracy against the exact evaluator, across all three
//! corpora, through the public facade only.

use xpe::datagen::generate_workload;
use xpe::prelude::*;

fn pipeline(dataset: Dataset, scale: f64) -> (f64, f64, f64, f64) {
    let doc = DatasetSpec {
        dataset,
        scale,
        seed: 1234,
    }
    .generate();
    let labeling = Labeling::compute(&doc);
    let workload = generate_workload(
        &doc,
        &labeling.encoding,
        &WorkloadConfig {
            simple_attempts: 400,
            branch_attempts: 400,
            ..WorkloadConfig::default()
        },
    );
    let summary = Summary::build(&doc, SummaryConfig::default());
    let est = Estimator::new(&summary);
    let mean = |cases: &[xpe::datagen::QueryCase]| {
        mean_relative_error(cases.iter().map(|c| (est.estimate(&c.query), c.actual))).unwrap_or(0.0)
    };
    (
        mean(&workload.simple),
        mean(&workload.branch),
        mean(&workload.order_branch),
        mean(&workload.order_trunk),
    )
}

#[test]
fn ssplays_pipeline_is_accurate_at_variance_zero() {
    let (simple, branch, order_b, order_t) = pipeline(Dataset::SSPlays, 0.02);
    assert_eq!(simple, 0.0, "Theorem 4.1: simple queries exact at v=0");
    assert!(branch < 0.10, "branch error {branch}");
    assert!(order_b < 0.10, "order(branch) error {order_b}");
    assert!(order_t < 0.10, "order(trunk) error {order_t}");
}

#[test]
fn dblp_pipeline_is_accurate_at_variance_zero() {
    let (simple, branch, order_b, order_t) = pipeline(Dataset::Dblp, 0.005);
    assert_eq!(simple, 0.0);
    assert!(branch < 0.10, "branch error {branch}");
    assert!(order_b < 0.20, "order(branch) error {order_b}");
    assert!(order_t < 0.10, "order(trunk) error {order_t}");
}

#[test]
fn xmark_pipeline_is_accurate_at_variance_zero() {
    // XMark's recursive parlist/listitem structure makes same-(tag, pid)
    // pairs ambiguous about depth, so even simple queries keep a residual
    // (documented in EXPERIMENTS.md); the paper's own XMark plots bottom
    // out above zero as well.
    let (simple, branch, order_b, order_t) = pipeline(Dataset::XMark, 0.02);
    assert!(simple < 0.25, "simple error {simple}");
    assert!(branch < 0.10, "branch error {branch}");
    assert!(order_b < 0.15, "order(branch) error {order_b}");
    assert!(order_t < 0.15, "order(trunk) error {order_t}");
}

#[test]
fn accuracy_degrades_gracefully_with_variance() {
    let doc = DatasetSpec {
        dataset: Dataset::SSPlays,
        scale: 0.02,
        seed: 5,
    }
    .generate();
    let labeling = Labeling::compute(&doc);
    let workload = generate_workload(
        &doc,
        &labeling.encoding,
        &WorkloadConfig {
            simple_attempts: 300,
            branch_attempts: 300,
            ..WorkloadConfig::default()
        },
    );
    let all: Vec<_> = workload
        .simple
        .iter()
        .chain(&workload.branch)
        .cloned()
        .collect();
    let mut last_bytes = usize::MAX;
    let mut errors = Vec::new();
    for v in [0.0, 4.0, 16.0, 64.0] {
        let s = Summary::build(
            &doc,
            SummaryConfig {
                p_variance: v,
                o_variance: v,
                ..SummaryConfig::default()
            },
        );
        assert!(
            s.sizes().total() <= last_bytes,
            "memory must not grow with variance"
        );
        last_bytes = s.sizes().total();
        let est = Estimator::new(&s);
        errors.push(
            mean_relative_error(all.iter().map(|c| (est.estimate(&c.query), c.actual)))
                .unwrap_or(0.0),
        );
    }
    // Coarsest must be no better than exact; exact must be near zero
    // (branch queries keep a small Node-Independence residual).
    assert!(errors[0] < 0.01, "v=0 error {}", errors[0]);
    assert!(
        errors.last().unwrap() >= &errors[0],
        "errors {errors:?} should not improve with coarser summaries"
    );
}

#[test]
fn xsketch_handles_the_same_plain_workload() {
    let doc = DatasetSpec {
        dataset: Dataset::SSPlays,
        scale: 0.02,
        seed: 5,
    }
    .generate();
    let labeling = Labeling::compute(&doc);
    let workload = generate_workload(
        &doc,
        &labeling.encoding,
        &WorkloadConfig {
            simple_attempts: 200,
            branch_attempts: 200,
            ..WorkloadConfig::default()
        },
    );
    let budget = Summary::build(&doc, SummaryConfig::default())
        .sizes()
        .path_total();
    let sketch = XSketch::build(&doc, budget);
    let err = mean_relative_error(
        workload
            .simple
            .iter()
            .chain(&workload.branch)
            .map(|c| (sketch.estimate(&c.query), c.actual)),
    )
    .unwrap();
    // XSketch is approximate but must be in a sane range on regular data.
    assert!(err < 1.0, "XSketch error {err}");
}

#[test]
fn summary_is_self_contained() {
    // The estimator must work from the summary alone after the document is
    // dropped — the whole point of a synopsis.
    let summary = {
        let doc = DatasetSpec {
            dataset: Dataset::SSPlays,
            scale: 0.01,
            seed: 3,
        }
        .generate();
        Summary::build(&doc, SummaryConfig::default())
    };
    let est = Estimator::new(&summary);
    assert!(est.estimate_str("//ACT/SCENE").unwrap() > 0.0);
    assert!(
        est.estimate_str("//SCENE[/STAGEDIR/folls::SPEECH]")
            .unwrap()
            >= 0.0
    );
}
