//! Integration: the `xpe serve` daemon over real sockets — concurrent
//! clients get answers bit-identical to direct [`Estimator`] calls, a
//! hostile client cannot perturb healthy ones, and hot reload under live
//! traffic completes with zero failed requests.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use xpe_core::server::{Json, Server, ServerConfig};
use xpe_core::Estimator;
use xpe_synopsis::{Summary, SummaryConfig};
use xpe_xpath::parse_query;

const QUERIES: [&str; 4] = [
    "//A//C",
    "//A/B",
    "//A[/C/F]/B/D",
    "//A[/C[/F]/folls::$B/D]",
];

fn summary() -> Summary {
    Summary::build(
        &xpe_xml::fixtures::paper_figure1(),
        SummaryConfig::default(),
    )
}

fn config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 64,
        read_timeout: Some(Duration::from_secs(5)),
        write_timeout: Some(Duration::from_secs(5)),
        ..ServerConfig::default()
    }
}

fn spawn(
    summary_path: Option<PathBuf>,
    config: ServerConfig,
) -> (SocketAddr, std::thread::JoinHandle<xpe_core::OutcomeTally>) {
    let server = Server::bind("127.0.0.1:0", Arc::new(summary()), summary_path, config)
        .expect("bind ephemeral port");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

/// A line-at-a-time protocol client.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.stream.write_all(line.as_bytes()).expect("write");
        self.stream.write_all(b"\n").expect("write");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read");
        Json::parse(reply.trim_end()).expect("response is JSON")
    }

    fn estimate(&mut self, query: &str) -> Json {
        self.roundtrip(&format!("{{\"op\": \"estimate\", \"query\": \"{query}\"}}"))
    }
}

fn shutdown(addr: SocketAddr) {
    let resp = Client::connect(addr).roundtrip("{\"op\": \"shutdown\"}");
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
}

fn direct_estimates() -> Vec<f64> {
    let s = summary();
    let est = Estimator::new(&s);
    QUERIES
        .iter()
        .map(|q| est.estimate(&parse_query(q).unwrap()))
        .collect()
}

#[test]
fn concurrent_clients_are_bit_identical_to_direct_estimation() {
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 8;
    let expected = direct_estimates();
    let (addr, server) = spawn(None, config());
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                for round in 0..ROUNDS {
                    let i = (c + round) % QUERIES.len();
                    let resp = client.estimate(QUERIES[i]);
                    assert_eq!(
                        resp.get("status").and_then(Json::as_str),
                        Some("ok"),
                        "client {c} round {round}"
                    );
                    let served = resp.get("estimate").and_then(Json::as_f64).unwrap();
                    assert_eq!(
                        served.to_bits(),
                        expected[i].to_bits(),
                        "client {c} round {round}: served {served} direct {}",
                        expected[i]
                    );
                }
            });
        }
    });
    shutdown(addr);
    let tally = server.join().unwrap();
    assert_eq!(tally.ok, (CLIENTS * ROUNDS) as u64);
    assert_eq!(tally.protocol_errors, 0);
    assert_eq!(tally.panics, 0);
}

#[test]
fn a_hostile_client_cannot_perturb_healthy_answers() {
    let expected = direct_estimates();
    let (addr, server) = spawn(
        None,
        ServerConfig {
            max_line_bytes: 256,
            ..config()
        },
    );
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // The hostile client cycles every abuse the protocol survives:
        // garbage lines, oversized lines, half-closed and mid-frame
        // abandoned connections.
        let stop_ref = &stop;
        scope.spawn(move || {
            let mut round = 0usize;
            while !stop_ref.load(Ordering::Relaxed) {
                match round % 4 {
                    0 => {
                        let mut c = Client::connect(addr);
                        let resp = c.roundtrip("!!garbage");
                        assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
                    }
                    1 => {
                        let mut c = Client::connect(addr);
                        let long = "x".repeat(4096);
                        let _ = c.stream.write_all(long.as_bytes());
                        let _ = c.stream.write_all(b"\n");
                        let mut reply = String::new();
                        let _ = c.reader.read_line(&mut reply);
                    }
                    2 => {
                        // Mid-frame disconnect: bytes but no newline.
                        let c = Client::connect(addr);
                        let _ = (&c.stream).write_all(b"{\"op\": \"esti");
                        let _ = c.stream.shutdown(Shutdown::Both);
                    }
                    _ => {
                        // Half-close after a valid request.
                        let mut c = Client::connect(addr);
                        let _ = c.stream.write_all(b"{\"op\": \"ping\"}\n");
                        let _ = c.stream.shutdown(Shutdown::Write);
                        let mut reply = String::new();
                        let _ = c.reader.read_line(&mut reply);
                    }
                }
                round += 1;
            }
        });
        let mut client = Client::connect(addr);
        for round in 0..32 {
            let i = round % QUERIES.len();
            let resp = client.estimate(QUERIES[i]);
            assert_eq!(
                resp.get("status").and_then(Json::as_str),
                Some("ok"),
                "round {round}"
            );
            let served = resp.get("estimate").and_then(Json::as_f64).unwrap();
            assert_eq!(served.to_bits(), expected[i].to_bits(), "round {round}");
        }
        stop.store(true, Ordering::Relaxed);
    });
    shutdown(addr);
    let tally = server.join().unwrap();
    assert_eq!(tally.panics, 0);
    assert!(tally.ok >= 32, "healthy requests all served: {tally}");
}

#[test]
fn reload_under_live_traffic_loses_no_request() {
    const CLIENTS: usize = 3;
    let expected = direct_estimates();
    let path =
        std::env::temp_dir().join(format!("xpe-serve-integration-{}.xps", std::process::id()));
    std::fs::write(&path, summary().to_bytes()).expect("persist summary");
    let (addr, server) = spawn(Some(path.clone()), config());
    // Phase gates: every client completes one epoch-1 request before the
    // reloads start, and keeps querying until both reloads are published.
    let started = Barrier::new(CLIENTS + 1);
    let reloaded = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (started, reloaded, expected) = (&started, &reloaded, &expected);
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                let resp = client.estimate(QUERIES[c % QUERIES.len()]);
                assert_eq!(resp.get("epoch").and_then(Json::as_f64), Some(1.0));
                started.wait();
                let mut rounds = 0usize;
                loop {
                    let done = reloaded.load(Ordering::Relaxed);
                    let i = rounds % QUERIES.len();
                    let resp = client.estimate(QUERIES[i]);
                    // The contract under reload: zero failures, answers
                    // bit-identical on every epoch (same summary file).
                    assert_eq!(
                        resp.get("status").and_then(Json::as_str),
                        Some("ok"),
                        "client {c} round {rounds} mid-reload"
                    );
                    let served = resp.get("estimate").and_then(Json::as_f64).unwrap();
                    assert_eq!(served.to_bits(), expected[i].to_bits());
                    let epoch = resp.get("epoch").and_then(Json::as_f64).unwrap();
                    assert!((1.0..=3.0).contains(&epoch), "epoch {epoch}");
                    rounds += 1;
                    if done {
                        assert_eq!(epoch, 3.0, "post-reload epoch");
                        break;
                    }
                }
            });
        }
        started.wait();
        let mut control = Client::connect(addr);
        for expected_epoch in [2.0, 3.0] {
            let resp = control.roundtrip("{\"op\": \"reload\"}");
            assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
            assert_eq!(
                resp.get("epoch").and_then(Json::as_f64),
                Some(expected_epoch)
            );
        }
        reloaded.store(true, Ordering::Relaxed);
    });
    shutdown(addr);
    let tally = server.join().unwrap();
    assert_eq!(tally.panics, 0);
    assert_eq!(tally.rejected, 0);
    let _ = std::fs::remove_file(&path);
}

/// The estimate cache must die with its generation: after a reload
/// swaps in a *different* summary, no client may ever receive an
/// epoch-2 response carrying the epoch-1 summary's (cached) value, and
/// no epoch-1 response may carry the new summary's value. Clients
/// hammer one query so epoch-1 answers are warm cache hits when the
/// reload lands mid-traffic.
#[test]
fn reload_with_caching_enabled_serves_zero_stale_answers() {
    const CLIENTS: usize = 3;
    const QUERY: &str = "//A//C";
    let parsed = parse_query(QUERY).unwrap();
    let summary_a = summary();
    // A different corpus over the same tags, so the two generations
    // genuinely disagree on QUERY — the precondition a staleness test
    // lives on.
    let doc_b = xpe_xml::parse_document("<R><A><C/><C/><B><C/></B></A><A><C/></A><A><B/></A></R>")
        .expect("inline corpus parses");
    let summary_b = Summary::build(&doc_b, SummaryConfig::default());
    let bits_a = Estimator::new(&summary_a).estimate(&parsed).to_bits();
    let bits_b = Estimator::new(&summary_b).estimate(&parsed).to_bits();
    assert_ne!(bits_a, bits_b, "summaries must disagree on {QUERY}");

    let path =
        std::env::temp_dir().join(format!("xpe-serve-stale-cache-{}.xps", std::process::id()));
    std::fs::write(&path, summary_a.to_bytes()).expect("persist summary A");
    let (addr, server) = spawn(Some(path.clone()), config());

    let started = Barrier::new(CLIENTS + 1);
    let reloaded = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (started, reloaded) = (&started, &reloaded);
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                // One warm-up hit before the reload is allowed to start.
                let resp = client.estimate(QUERY);
                assert_eq!(resp.get("epoch").and_then(Json::as_f64), Some(1.0));
                started.wait();
                loop {
                    let done = reloaded.load(Ordering::Relaxed);
                    let resp = client.estimate(QUERY);
                    assert_eq!(
                        resp.get("status").and_then(Json::as_str),
                        Some("ok"),
                        "client {c} mid-reload"
                    );
                    let served = resp.get("estimate").and_then(Json::as_f64).unwrap();
                    let epoch = resp.get("epoch").and_then(Json::as_f64).unwrap();
                    // The whole point: the served value must match the
                    // summary of the epoch that served it, bitwise.
                    if epoch == 1.0 {
                        assert_eq!(
                            served.to_bits(),
                            bits_a,
                            "client {c}: epoch-1 answer from summary B"
                        );
                    } else {
                        assert_eq!(epoch, 2.0, "client {c}: unexpected epoch");
                        assert_eq!(
                            served.to_bits(),
                            bits_b,
                            "client {c}: stale cached answer crossed the epoch bump"
                        );
                    }
                    if done && epoch == 2.0 {
                        break;
                    }
                }
            });
        }
        started.wait();
        // Swap the on-disk summary under the running server, then reload
        // while the clients keep hammering the (cached) query.
        std::fs::write(&path, summary_b.to_bytes()).expect("persist summary B");
        let mut control = Client::connect(addr);
        let resp = control.roundtrip("{\"op\": \"reload\"}");
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(resp.get("epoch").and_then(Json::as_f64), Some(2.0));
        reloaded.store(true, Ordering::Relaxed);
    });
    shutdown(addr);
    let tally = server.join().unwrap();
    assert_eq!(tally.panics, 0);
    assert_eq!(tally.rejected, 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn failed_reload_keeps_the_old_generation_serving() {
    let expected = direct_estimates();
    let (addr, server) = spawn(None, config());
    let mut client = Client::connect(addr);
    let resp = client.roundtrip("{\"op\": \"reload\", \"path\": \"/nonexistent/image.xps\"}");
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(
        resp.get("error").and_then(Json::as_str),
        Some("reload-failed")
    );
    // Still epoch 1, still bit-identical.
    let resp = client.estimate(QUERIES[0]);
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(resp.get("epoch").and_then(Json::as_f64), Some(1.0));
    let served = resp.get("estimate").and_then(Json::as_f64).unwrap();
    assert_eq!(served.to_bits(), expected[0].to_bits());
    drop(client);
    shutdown(addr);
    let tally = server.join().unwrap();
    assert_eq!(tally.ok, 1);
    assert_eq!(tally.panics, 0);
}
