//! API-surface test: everything the README and examples rely on is
//! reachable through the `xpe` facade and the prelude, with the
//! documented signatures.

use xpe::prelude::*;

#[test]
fn prelude_covers_the_quickstart_flow() {
    let doc = parse_document("<lib><book><chap/><chap/></book><book><chap/></book></lib>")
        .expect("well-formed");
    let summary = Summary::build(&doc, SummaryConfig::default());
    let est = Estimator::new(&summary);
    assert_eq!(est.estimate_str("//book/chap").unwrap(), 3.0);
    let order = DocOrder::new(&doc);
    let q = parse_query("//book/chap").unwrap();
    assert_eq!(selectivity(&doc, &order, &q), 3);
}

#[test]
fn every_subsystem_is_reachable_through_the_facade() {
    let doc = xpe::xml::fixtures::paper_figure1();
    let labeling = xpe::pathid::Labeling::compute(&doc);
    assert_eq!(labeling.encoding.len(), 4);

    let summary = xpe::synopsis::Summary::build(&doc, xpe::synopsis::SummaryConfig::default());
    assert!(xpe::estimator::Estimator::new(&summary)
        .estimate_str("//A//C")
        .is_ok());

    let sketch = xpe::xsketch::XSketch::build(&doc, 4096);
    assert!(sketch.estimate(&parse_query("//A/B").unwrap()) > 0.0);

    let markov = xpe::markov::MarkovEstimator::build(&doc, 2);
    assert!(markov.estimate(&parse_query("//A/B").unwrap()).is_some());

    let pos = xpe::poshist::PositionEstimator::build(&doc, 8);
    assert!(pos.estimate(&parse_query("//A//B").unwrap()).is_some());

    let join = xpe::join::JoinProcessor::new(&doc, &labeling);
    assert_eq!(
        join.count_path(&parse_query("//A/B/D").unwrap(), true)
            .unwrap()
            .matches,
        4
    );

    let spec = xpe::datagen::DatasetSpec {
        dataset: Dataset::SSPlays,
        scale: 0.005,
        seed: 1,
    };
    assert!(spec.generate().len() > 100);
}

#[test]
fn metrics_and_planner_are_public() {
    let doc = xpe::xml::fixtures::paper_figure1();
    let summary = Summary::build(&doc, SummaryConfig::default());
    let est = Estimator::new(&summary);
    let q = parse_query("//$A[/B][/C]").unwrap();
    let ranks = est.rank_predicates(&q, q.target());
    assert_eq!(ranks.len(), 2);
    let cards = est.path_cardinalities(&q);
    assert_eq!(cards.steps.len(), 1);
    let stats = xpe::estimator::ErrorStats::compute(vec![(1.0, 1), (2.0, 1)]).unwrap();
    assert_eq!(stats.count, 2);
    assert_eq!(relative_error(2.0, 1), 1.0);
    assert_eq!(mean_relative_error(vec![(1.0, 1)]), Some(0.0));
}

#[test]
fn summary_persistence_is_public() {
    let doc = xpe::xml::fixtures::paper_figure1();
    let summary = Summary::build(&doc, SummaryConfig::default());
    let bytes = summary.to_bytes();
    let back = Summary::from_bytes(&bytes).unwrap();
    assert_eq!(back.pids.len(), summary.pids.len());
}
