//! Property tests of the estimator across random documents and queries.
//!
//! The estimator is approximate by design, so properties assert *structure*
//! rather than exactness — except where the paper proves exactness
//! (Theorem 4.1 on non-recursive data at variance 0).

use proptest::prelude::*;

use xpe::prelude::*;
use xpe::xpath::{Axis, QueryEdge, QueryNode, QueryNodeId};

/// Random non-recursive document: the tag at depth `d` is always drawn
/// from a depth-specific alphabet, so no tag repeats along any root path
/// and Theorem 4.1's premise holds.
#[derive(Debug, Clone)]
struct LayerSpec {
    tag: u8,
    children: Vec<LayerSpec>,
}

fn arb_layered_doc() -> impl Strategy<Value = LayerSpec> {
    let leaf = (0u8..3).prop_map(|t| LayerSpec {
        tag: t,
        children: vec![],
    });
    leaf.prop_recursive(3, 40, 4, |inner| {
        (0u8..3, prop::collection::vec(inner, 0..4))
            .prop_map(|(tag, children)| LayerSpec { tag, children })
    })
}

fn build_layered(spec: &LayerSpec) -> Document {
    let mut b = TreeBuilder::new();
    fn rec(b: &mut TreeBuilder, s: &LayerSpec, depth: usize) {
        // Depth-qualified tags guarantee non-recursive paths.
        b.begin_element(&format!("d{depth}t{}", s.tag));
        for c in &s.children {
            rec(b, c, depth + 1);
        }
        b.end_element().unwrap();
    }
    b.begin_element("root");
    rec(&mut b, spec, 1);
    b.end_element().unwrap();
    b.finish().unwrap()
}

/// A random simple path query over the depth-qualified vocabulary.
fn arb_path_query() -> impl Strategy<Value = (Vec<(bool, u8)>, bool)> {
    (
        prop::collection::vec((any::<bool>(), 0u8..3), 1..4),
        any::<bool>(),
    )
}

fn build_path_query(steps: &[(bool, u8)], root_desc: bool) -> Query {
    let mut nodes = Vec::new();
    for (i, &(child_axis, tag)) in steps.iter().enumerate() {
        nodes.push(QueryNode {
            // Depth-aligned tags when using child axes keeps positives
            // plentiful; the property holds either way.
            tag: format!("d{}t{}", i + 1, tag),
            edges: Vec::new(),
            constraints: Vec::new(),
        });
        if i > 0 {
            let axis = if child_axis {
                Axis::Child
            } else {
                Axis::Descendant
            };
            let to = QueryNodeId::from_index(i);
            nodes[i - 1].edges.push(QueryEdge { axis, to });
        }
    }
    let root_axis = if root_desc {
        Axis::Descendant
    } else {
        Axis::Child
    };
    let target = QueryNodeId::from_index(nodes.len() - 1);
    Query::new(nodes, root_axis, target).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 4.1: simple path queries estimate exactly at variance 0 on
    /// non-recursive documents — but only when each query tag occurs at a
    /// single depth, which the layered construction guarantees.
    #[test]
    fn theorem_4_1_exact_on_layered_docs(
        spec in arb_layered_doc(),
        (steps, root_desc) in arb_path_query(),
    ) {
        let doc = build_layered(&spec);
        let query = build_path_query(&steps, root_desc);
        let summary = Summary::build(&doc, SummaryConfig::default());
        let est = Estimator::new(&summary);
        let order = DocOrder::new(&doc);
        let exact = selectivity(&doc, &order, &query) as f64;
        let estimate = est.estimate(&query);
        prop_assert!(
            (estimate - exact).abs() < 1e-9,
            "query {} estimate {} exact {}", query, estimate, exact
        );
    }

    /// Estimates are always finite and non-negative, for every dataset
    /// query class the workload generator emits.
    #[test]
    fn estimates_are_finite_and_nonnegative(seed in 0u64..32) {
        let doc = DatasetSpec {
            dataset: Dataset::SSPlays,
            scale: 0.01,
            seed,
        }
        .generate();
        let labeling = Labeling::compute(&doc);
        let workload = xpe::datagen::generate_workload(
            &doc,
            &labeling.encoding,
            &WorkloadConfig {
                seed,
                simple_attempts: 40,
                branch_attempts: 40,
                ..WorkloadConfig::default()
            },
        );
        let summary = Summary::build(
            &doc,
            SummaryConfig { p_variance: 2.0, o_variance: 2.0, ..SummaryConfig::default() },
        );
        let est = Estimator::new(&summary);
        for case in workload
            .simple
            .iter()
            .chain(&workload.branch)
            .chain(&workload.order_branch)
            .chain(&workload.order_trunk)
        {
            let e = est.estimate(&case.query);
            prop_assert!(e.is_finite(), "{}", case.text);
            prop_assert!(e >= 0.0, "{}", case.text);
        }
    }

    /// Eq. 5's min-bound: a trunk-target order query never estimates above
    /// its order-free counterpart.
    #[test]
    fn order_trunk_estimates_bounded_by_plain(seed in 0u64..16) {
        let doc = DatasetSpec {
            dataset: Dataset::SSPlays,
            scale: 0.01,
            seed,
        }
        .generate();
        let labeling = Labeling::compute(&doc);
        let workload = xpe::datagen::generate_workload(
            &doc,
            &labeling.encoding,
            &WorkloadConfig {
                seed,
                simple_attempts: 0,
                branch_attempts: 80,
                ..WorkloadConfig::default()
            },
        );
        let summary = Summary::build(&doc, SummaryConfig::default());
        let est = Estimator::new(&summary);
        for case in &workload.order_trunk {
            let ordered = est.estimate(&case.query);
            let plain = est.estimate_plain(
                &xpe::estimator::without_constraints(&case.query).query,
                case.query.target(),
            );
            prop_assert!(
                ordered <= plain + 1e-6,
                "{}: ordered {} plain {}", case.text, ordered, plain
            );
        }
    }
}
