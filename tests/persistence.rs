//! Integration: a persisted summary estimates identically to the freshly
//! built one, across datasets, query classes and variance settings.

use xpe::datagen::generate_workload;
use xpe::prelude::*;
use xpe::synopsis::Summary as Syn;

#[test]
fn saved_summary_estimates_identically() {
    for (dataset, scale) in [
        (Dataset::SSPlays, 0.02),
        (Dataset::Dblp, 0.003),
        (Dataset::XMark, 0.01),
    ] {
        let doc = DatasetSpec {
            dataset,
            scale,
            seed: 77,
        }
        .generate();
        let labeling = Labeling::compute(&doc);
        let workload = generate_workload(
            &doc,
            &labeling.encoding,
            &WorkloadConfig {
                simple_attempts: 120,
                branch_attempts: 120,
                ..WorkloadConfig::default()
            },
        );
        for (pv, ov) in [(0.0, 0.0), (2.0, 4.0)] {
            let original = Syn::build(
                &doc,
                SummaryConfig {
                    p_variance: pv,
                    o_variance: ov,
                    ..SummaryConfig::default()
                },
            );
            let reloaded = Syn::from_bytes(&original.to_bytes()).expect("round trip");
            let est_a = Estimator::new(&original);
            let est_b = Estimator::new(&reloaded);
            for case in workload
                .simple
                .iter()
                .chain(&workload.branch)
                .chain(&workload.order_branch)
                .chain(&workload.order_trunk)
            {
                let a = est_a.estimate(&case.query);
                let b = est_b.estimate(&case.query);
                assert!(
                    (a - b).abs() < 1e-9,
                    "{} ({dataset:?}, pv={pv}, ov={ov}): {a} vs {b}",
                    case.text
                );
            }
        }
    }
}

#[test]
fn summary_file_round_trip() {
    let doc = DatasetSpec {
        dataset: Dataset::SSPlays,
        scale: 0.01,
        seed: 9,
    }
    .generate();
    let summary = Syn::build(&doc, SummaryConfig::default());
    let dir = std::env::temp_dir().join(format!("xpe-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("plays.xps");
    summary.save_to_file(&path).unwrap();
    let reloaded = Syn::load_from_file(&path).unwrap();
    assert_eq!(reloaded.pids.len(), summary.pids.len());
    assert_eq!(
        Estimator::new(&reloaded)
            .estimate_str("//ACT/SCENE")
            .unwrap(),
        Estimator::new(&summary)
            .estimate_str("//ACT/SCENE")
            .unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loading_garbage_fails_cleanly() {
    assert!(Syn::from_bytes(b"").is_err());
    assert!(Syn::from_bytes(b"not a summary at all").is_err());
    assert!(Syn::from_bytes(&[0u8; 64]).is_err());
}
