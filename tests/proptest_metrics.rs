//! Property tests of the accuracy metrics.
//!
//! The metrics grade every experiment in the repo, so they get the same
//! treatment as the estimator: structural properties over random
//! workloads — agreement between the two mean implementations, percentile
//! monotonicity, and NaN-freedom for finite inputs.

use proptest::prelude::*;

use xpe::estimator::{mean_relative_error, relative_error, ErrorStats};

fn arb_pairs() -> impl Strategy<Value = Vec<(f64, u64)>> {
    prop::collection::vec((0.0f64..10_000.0, 0u64..10_000), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `ErrorStats::compute` and `mean_relative_error` are independent
    /// implementations of the same mean; they must agree.
    #[test]
    fn stats_mean_agrees_with_mean_relative_error(pairs in arb_pairs()) {
        let stats = ErrorStats::compute(pairs.clone()).unwrap();
        let mean = mean_relative_error(pairs).unwrap();
        prop_assert!(
            (stats.mean - mean).abs() <= 1e-9 * mean.abs().max(1.0),
            "stats.mean {} != mean_relative_error {}", stats.mean, mean
        );
    }

    /// Percentiles are order statistics: median ≤ p90 ≤ max, and every
    /// one is an actually observed error bounded by the extremes.
    #[test]
    fn percentiles_are_monotone(pairs in arb_pairs()) {
        let s = ErrorStats::compute(pairs.clone()).unwrap();
        prop_assert!(s.median <= s.p90, "median {} > p90 {}", s.median, s.p90);
        prop_assert!(s.p90 <= s.max, "p90 {} > max {}", s.p90, s.max);
        let max_obs = pairs
            .iter()
            .map(|&(e, a)| relative_error(e, a))
            .fold(0.0f64, f64::max);
        prop_assert!((s.max - max_obs).abs() < 1e-12);
        prop_assert_eq!(s.count, pairs.len());
    }

    /// Finite estimates can never produce NaN statistics: the denominator
    /// is clamped to ≥ 1, so every relative error is finite.
    #[test]
    fn stats_are_nan_free_for_finite_estimates(pairs in arb_pairs()) {
        let s = ErrorStats::compute(pairs).unwrap();
        prop_assert!(s.mean.is_finite());
        prop_assert!(s.median.is_finite());
        prop_assert!(s.p90.is_finite());
        prop_assert!(s.max.is_finite());
        prop_assert!(s.mean >= 0.0 && s.median >= 0.0);
    }
}
