//! Equivalence properties of the performance layer: parallelism and
//! caching must never change results.
//!
//! * A summary built with any thread count serializes to the same bytes
//!   as the serial build (the persist codec is a canonical encoding of
//!   everything the estimator reads, so byte equality is observational
//!   equality).
//! * `EstimationEngine::estimate_batch` returns bit-identical estimates
//!   to a serial `Estimator::estimate` loop, at any worker count, with
//!   cold or warm caches.

use proptest::prelude::*;

use xpe::prelude::*;

fn random_doc(seed: u64, scale_step: u8) -> Document {
    DatasetSpec {
        dataset: Dataset::SSPlays,
        scale: 0.005 + f64::from(scale_step) * 0.005,
        seed,
    }
    .generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Parallel summary construction is byte-identical to serial.
    #[test]
    fn parallel_build_matches_serial_bytes(
        seed in 0u64..1024,
        scale_step in 0u8..3,
        p_variance in prop::strategy::Union::new(vec![
            Just(0.0f64).boxed(), Just(1.0f64).boxed(), Just(4.0f64).boxed(),
        ]),
    ) {
        let doc = random_doc(seed, scale_step);
        // Threshold 0 forces the parallel path even for these small
        // documents — otherwise the size fallback would silently make
        // every case serial and the property vacuous.
        let base = SummaryConfig { p_variance, o_variance: p_variance, ..SummaryConfig::default() }
            .with_parallel_threshold(0);
        let serial = Summary::build(&doc, base.with_threads(1)).to_bytes();
        for threads in [0usize, 2, 4] {
            let parallel = Summary::build(&doc, base.with_threads(threads)).to_bytes();
            prop_assert!(
                parallel == serial,
                "threads={} produced different bytes (len {} vs {})",
                threads, parallel.len(), serial.len()
            );
        }
    }

    /// Batched estimation is bit-identical to the serial per-query loop.
    #[test]
    fn estimate_batch_matches_serial_loop(seed in 0u64..1024) {
        let doc = random_doc(seed, 1);
        let labeling = Labeling::compute(&doc);
        let workload = xpe::datagen::generate_workload(
            &doc,
            &labeling.encoding,
            &WorkloadConfig {
                seed,
                simple_attempts: 30,
                branch_attempts: 30,
                ..WorkloadConfig::default()
            },
        );
        let queries: Vec<Query> = workload
            .simple
            .iter()
            .chain(&workload.branch)
            .chain(&workload.order_branch)
            .chain(&workload.order_trunk)
            .map(|c| c.query.clone())
            .collect();
        let summary = Summary::build(
            &doc,
            SummaryConfig { p_variance: 1.0, o_variance: 1.0, ..SummaryConfig::default() },
        );
        let est = Estimator::new(&summary);
        let serial: Vec<u64> = queries.iter().map(|q| est.estimate(q).to_bits()).collect();
        for threads in [0usize, 1, 3] {
            let engine = EstimationEngine::new(&summary).with_threads(threads);
            // Two runs per engine: cold caches, then warm.
            for run in 0..2 {
                let batch: Vec<u64> = engine
                    .estimate_batch(&queries)
                    .into_iter()
                    .map(f64::to_bits)
                    .collect();
                prop_assert!(
                    batch == serial,
                    "threads={} run={} diverged over {} queries",
                    threads, run, queries.len()
                );
            }
        }
    }
}
