//! Closing the loop the paper motivates: the estimator *predicts*, the
//! structural-join processor *executes*, and the prediction decides the
//! plan — here, whether the XSym'05 path-id pre-filter is worth applying
//! to each join input.
//!
//! Run with: `cargo run --release --example estimate_then_execute`

use xpe::join::JoinProcessor;
use xpe::prelude::*;

fn main() {
    let doc = DatasetSpec {
        dataset: Dataset::SSPlays,
        scale: 0.1,
        seed: 11,
    }
    .generate();
    let labeling = Labeling::compute(&doc);
    let summary = Summary::build(&doc, SummaryConfig::default());
    let est = Estimator::new(&summary);
    let proc = JoinProcessor::new(&doc, &labeling);

    let queries = [
        "//PLAY/PERSONAE/PGROUP/GRPDESCR", // selective: filter pays off
        "//SCENE/SPEECH/LINE",             // unselective: filter is overhead
        "//PLAY/PROLOGUE/LINE",
        "//ACT/SCENE/STAGEDIR",
    ];

    println!(
        "{:<36} {:>9} {:>8} {:>10} {:>10} {:>8}",
        "query", "estimate", "actual", "scan(raw)", "scan(pid)", "plan"
    );
    for text in queries {
        let query = parse_query(text).expect("valid");
        let estimate = est.estimate(&query);
        let raw = proc.count_path(&query, false).expect("simple path");
        let filtered = proc.count_path(&query, true).expect("simple path");
        assert_eq!(
            raw.matches, filtered.matches,
            "filter must not change results"
        );

        // Plan rule: if the estimate says the result is small relative to
        // the inputs, the pid filter will prune a lot — apply it.
        let plan = if estimate < raw.input_scanned as f64 / 4.0 {
            "filter"
        } else {
            "scan"
        };
        println!(
            "{text:<36} {estimate:>9.1} {:>8} {:>10} {:>10} {plan:>8}",
            raw.matches, raw.input_scanned, filtered.input_scanned
        );
    }
    println!(
        "\nThe pid filter removed input exactly where the estimator predicted\n\
         small results — cardinality estimation doing its job in a plan."
    );
}
