//! Using the estimator the way a query optimizer would — the paper's
//! stated purpose ("estimating the result sizes of XML queries is
//! important in query optimization").
//!
//! For a twig query with several predicates, a structural-join planner
//! wants to apply the most selective predicate first. This example ranks
//! candidate predicate orders by estimated selectivity and checks the
//! ranking against exact cardinalities.
//!
//! Run with: `cargo run --release --example optimizer_integration`

use xpe::estimator::PredicateRank;
use xpe::prelude::*;

fn main() {
    let doc = DatasetSpec {
        dataset: Dataset::XMark,
        scale: 0.05,
        seed: 7,
    }
    .generate();
    println!("auction site: {} elements", doc.len());

    let summary = Summary::build(&doc, SummaryConfig::default());
    let est = Estimator::new(&summary);
    let order = DocOrder::new(&doc);
    let eval = Evaluator::new(&doc, &order);

    // The optimizer needs per-predicate selectivities of `person` to pick
    // a filter order for:
    //   //person[address/city][profile/education][homepage]
    let predicates = [
        ("//$person[/address/city]", "address/city"),
        ("//$person[/profile/education]", "profile/education"),
        ("//$person[/homepage]", "homepage"),
        ("//$person[/watches/watch]", "watches/watch"),
    ];

    let total = est.estimate_str("//person").unwrap();
    println!("\n|person| ≈ {total:.0}");
    println!(
        "\n{:<22} {:>10} {:>10} {:>12}",
        "predicate", "est. card", "exact", "est. select."
    );
    let mut ranked: Vec<(f64, &str, u64)> = Vec::new();
    for (q, name) in predicates {
        let query = parse_query(q).expect("valid");
        let estimate = est.estimate(&query);
        let exact = eval.selectivity(&query);
        println!(
            "{name:<22} {estimate:>10.1} {exact:>10} {:>11.1}%",
            100.0 * estimate / total
        );
        ranked.push((estimate, name, exact));
    }

    ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
    println!("\nplanned filter order (most selective first):");
    for (i, (estimate, name, exact)) in ranked.iter().enumerate() {
        println!("  {}. {name}  (est {estimate:.0}, exact {exact})", i + 1);
    }

    // Verify the estimate-driven order matches the exact-cardinality order.
    let mut exact_order = ranked.clone();
    exact_order.sort_by_key(|&(_, _, exact)| exact);
    let agree = ranked.iter().zip(&exact_order).all(|(a, b)| a.1 == b.1);
    println!(
        "\nestimate-driven plan {} the exact-cardinality plan",
        if agree { "matches" } else { "differs from" }
    );

    // The same decision through the planner API: one combined query, with
    // every predicate ranked in a single call.
    let combined =
        parse_query("//$person[/address/city][/profile/education][/homepage][/watches/watch]")
            .expect("valid");
    let ranks: Vec<PredicateRank> = est.rank_predicates(&combined, combined.target());
    println!("\nplanner API ranking for the combined query:");
    for (i, r) in ranks.iter().enumerate() {
        println!(
            "  {}. {} (est {:.0})",
            i + 1,
            combined.node(r.head).tag,
            r.estimated_card
        );
    }
}
