//! End-to-end workload study on DBLP-like data: generate the corpus, the
//! §7 query workload, sweep the summary variance, and report accuracy per
//! query class — a miniature of the paper's Figures 10 and 12 for one
//! dataset, through the public API only.
//!
//! Run with: `cargo run --release --example dblp_analysis`

use xpe::datagen::generate_workload;
use xpe::prelude::*;

fn main() {
    let doc = DatasetSpec {
        dataset: Dataset::Dblp,
        scale: 0.02,
        seed: 1,
    }
    .generate();
    let labeling = Labeling::compute(&doc);
    println!(
        "DBLP-like corpus: {} elements, {} distinct paths, {} distinct pids",
        doc.len(),
        labeling.encoding.len(),
        labeling.interner.len()
    );

    let workload = generate_workload(
        &doc,
        &labeling.encoding,
        &WorkloadConfig {
            simple_attempts: 800,
            branch_attempts: 800,
            ..WorkloadConfig::default()
        },
    );
    println!(
        "workload: {} simple, {} branch, {} order (branch target), {} order (trunk target)",
        workload.simple.len(),
        workload.branch.len(),
        workload.order_branch.len(),
        workload.order_trunk.len()
    );

    println!(
        "\n{:>5} {:>5} {:>10} {:>10} {:>11} {:>11} {:>11}",
        "p.var", "o.var", "bytes", "simple", "branch", "order/brch", "order/trnk"
    );
    for (pv, ov) in [(0.0, 0.0), (0.0, 4.0), (1.0, 4.0), (5.0, 8.0), (10.0, 14.0)] {
        let summary = Summary::build(
            &doc,
            SummaryConfig {
                p_variance: pv,
                o_variance: ov,
                ..SummaryConfig::default()
            },
        );
        let est = Estimator::new(&summary);
        let mean = |cases: &[xpe::datagen::QueryCase]| {
            mean_relative_error(cases.iter().map(|c| (est.estimate(&c.query), c.actual)))
                .unwrap_or(f64::NAN)
        };
        println!(
            "{pv:>5} {ov:>5} {:>10} {:>10.4} {:>11.4} {:>11.4} {:>11.4}",
            summary.sizes().total(),
            mean(&workload.simple),
            mean(&workload.branch),
            mean(&workload.order_branch),
            mean(&workload.order_trunk),
        );
    }
    println!(
        "\nNote the first row: at variance 0 simple queries are exact\n\
         (Theorem 4.1) and branch/order errors stay in the low percent —\n\
         the paper's headline result."
    );
}
