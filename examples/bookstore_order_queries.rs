//! Order-axis estimation on intrinsically ordered data — the motivating
//! scenario of the paper's introduction ("the chapter order of the book is
//! important and a query can ask for the second chapter").
//!
//! Generates a Shakespeare-like corpus (scenes within acts, speeches
//! within scenes — all order-significant), then compares estimates against
//! exact answers for a batch of order-axis queries at several summary
//! sizes.
//!
//! Run with: `cargo run --release --example bookstore_order_queries`

use xpe::prelude::*;

fn main() {
    let doc = DatasetSpec {
        dataset: Dataset::SSPlays,
        scale: 0.05,
        seed: 2026,
    }
    .generate();
    println!("corpus: {} elements", doc.len());

    let order = DocOrder::new(&doc);
    let eval = Evaluator::new(&doc, &order);

    // Order-sensitive questions an application over plays would ask.
    let queries = [
        // Scenes that still have scenes after them in the same act.
        "//ACT[/SCENE/folls::$SCENE]",
        // Speeches that follow a stage direction among their siblings.
        "//SCENE[/STAGEDIR/folls::$SPEECH]",
        // Stage directions that close a scene (some speech precedes them).
        "//SCENE[/SPEECH/folls::$STAGEDIR]",
        // Epilogue-like: lines preceded by a title in the same prologue.
        "//PROLOGUE[/TITLE/folls::$LINE]",
        // Acts whose title is followed (in document order) by a speaker.
        "//ACT[/TITLE/foll::$SPEAKER]",
    ];

    for (p_var, o_var) in [(0.0, 0.0), (1.0, 2.0), (10.0, 14.0)] {
        let summary = Summary::build(
            &doc,
            SummaryConfig {
                p_variance: p_var,
                o_variance: o_var,
                ..SummaryConfig::default()
            },
        );
        let est = Estimator::new(&summary);
        let sizes = summary.sizes();
        println!(
            "\n--- p-variance {p_var}, o-variance {o_var}: {} B total summary ---",
            sizes.total()
        );
        println!(
            "{:<42} {:>10} {:>8} {:>7}",
            "query", "estimate", "exact", "relerr"
        );
        for text in queries {
            let query = parse_query(text).expect("valid");
            let estimate = est.estimate(&query);
            let exact = eval.selectivity(&query);
            println!(
                "{text:<42} {estimate:>10.2} {exact:>8} {:>7.3}",
                relative_error(estimate, exact)
            );
        }
    }
    println!(
        "\nTighter variances cost more bytes and buy accuracy — the paper's\n\
         central memory/accuracy tradeoff (Figures 9 and 12)."
    );
}
