//! Quickstart: build a summary from an XML document and estimate XPath
//! selectivities — including order-based axes — without touching the
//! document again.
//!
//! Run with: `cargo run --example quickstart`

use xpe::prelude::*;

fn main() {
    // A small library catalog. Chapter order matters: a query can ask for
    // appendices that follow a chapter, or prefaces that precede one.
    let doc = parse_document(
        "<library>\
           <book><title/><preface/><chapter/><chapter/><appendix/></book>\
           <book><title/><chapter/><appendix/><chapter/></book>\
           <book><title/><preface/><chapter/></book>\
         </library>",
    )
    .expect("well-formed");

    // Everything the estimator needs, in a few KB: the encoding table,
    // the path-id binary tree and the p-/o-histograms.
    let summary = Summary::build(&doc, SummaryConfig::default());
    let sizes = summary.sizes();
    println!(
        "summary: {} B path info + {} B order info for {} elements",
        sizes.path_total(),
        sizes.o_histograms,
        doc.len()
    );

    let estimator = Estimator::new(&summary);
    let order = DocOrder::new(&doc);

    let queries = [
        "//book",                           // simple
        "//book/chapter",                   // simple
        "/library/book[/preface]/chapter",  // branch
        "//book[/chapter/folls::appendix]", // order: appendix after a chapter
        "//book[/chapter/pres::$preface]",  // order: preface before a chapter
        "//book[/title/foll::chapter]",     // document-order following
    ];
    println!("\n{:<38} {:>9} {:>6}", "query", "estimate", "exact");
    for text in queries {
        let query = parse_query(text).expect("valid query");
        let estimate = estimator.estimate(&query);
        let exact = selectivity(&doc, &order, &query);
        println!("{text:<38} {estimate:>9.2} {exact:>6}");
    }
}
