//! Regenerates the checked-in corrupted-summary corpus under
//! `tests/corrupt/`.
//!
//! The corpus pins one concrete corrupted image per integrity-fault class
//! so the CLI integration tests can assert that `xpe estimate` fails with
//! a distinct, typed diagnostic on each — independent of the randomized
//! sweep in `xpe faults`. Re-run after any wire-format change:
//!
//! ```text
//! cargo run --example gen_corrupt_corpus
//! ```
//!
//! The base document is deterministic, so regeneration is reproducible.

use xpe::prelude::*;

fn main() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corrupt");
    std::fs::create_dir_all(dir).expect("create tests/corrupt");

    let doc = parse_document(
        "<library>\
           <book><title/><preface/><chapter/><chapter/><appendix/></book>\
           <book><title/><chapter/><appendix/><chapter/></book>\
           <book><title/><preface/><chapter/></book>\
         </library>",
    )
    .expect("well-formed");
    let summary = Summary::build(&doc, SummaryConfig::default());
    let base = summary.to_bytes();
    assert!(
        base.len() > 32,
        "need header + payload + trailer to corrupt"
    );

    let write = |name: &str, bytes: &[u8]| {
        let path = format!("{dir}/{name}");
        std::fs::write(&path, bytes).expect("write corpus file");
        println!("{path}: {} bytes", bytes.len());
    };

    // Pristine image: the tests load this one first to prove the corpus
    // base is valid, so a failure on a sibling is the corruption talking.
    write("valid.xps", &base);

    // One bit flipped in the payload region (past the 16-byte header) —
    // must surface as a checksum mismatch.
    let mut bitflip = base.clone();
    bitflip[24] ^= 0x10;
    write("bitflip.xps", &bitflip);

    // Strict prefix: the payload length field promises more bytes than
    // the file holds — must surface as a truncation error.
    write("truncated.xps", &base[..base.len() / 2]);

    // Version field (bytes 4..8, little-endian) rewritten to an unknown
    // revision — must surface as an unsupported-version error.
    let mut version = base.clone();
    version[4..8].copy_from_slice(&99u32.to_le_bytes());
    write("version.xps", &version);

    // Valid image with junk appended — must surface as trailing bytes,
    // not be silently ignored.
    let mut trailing = base.clone();
    trailing.extend_from_slice(b"\xDE\xAD\xBE\xEF junk");
    write("trailing.xps", &trailing);

    // Hostile count field with a *valid* checksum: the o-histogram set's
    // tag count rewritten to u32::MAX and the CRC-32 trailer recomputed,
    // so the envelope passes and the structural decoder itself must
    // reject the lie. The decoder's length-capped preallocation
    // (`wire::cap_alloc`) is what keeps this from requesting a
    // multi-gigabyte buffer before the truncation check fires.
    let mut inflated = base;
    let ohist_payload_off = xpe::synopsis::SummaryView::parse(&inflated)
        .expect("base image parses")
        .sections()
        .ohist
        .start;
    // File offset: 16-byte v2 header + section offset + 8-byte variance.
    let count_off = 16 + ohist_payload_off + 8;
    inflated[count_off..count_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let body_len = inflated.len() - 4;
    let crc = xpe::xml::wire::crc32(&inflated[..body_len]);
    inflated[body_len..].copy_from_slice(&crc.to_le_bytes());
    write("inflated.xps", &inflated);
}
